//! ZeRO stage-1: optimizer-state sharding (Rajbhandari et al.), as the
//! paper adds to HydraGNN via DeepSpeed (Sec. V-C).
//!
//! Each rank keeps Adam moments for only `1/world` of the flattened
//! parameter vector. Per step:
//!
//! 1. gradients are **reduce-scattered** (each rank receives the summed
//!    gradient of its own shard),
//! 2. the rank updates its parameter shard with [`adam_update`],
//! 3. updated shards are **all-gathered** so every rank again holds the
//!    full parameter vector.
//!
//! Memory: optimizer state shrinks from `2·P` to `2·P/world` floats per
//! rank — the 36% peak reduction of the paper's Fig. 6(b) — at the cost of
//! two collectives per step (the paper's +23 pt runtime overhead in
//! Table II).

use matgnn_tensor::{MemoryCategory, MemoryTracker};
use matgnn_train::{adam_update, AdamHyper};

use crate::{shard_range, CommError, Communicator};

/// A ZeRO-1 sharded Adam optimizer for one rank.
#[derive(Debug)]
pub struct ZeroAdam {
    hyper: AdamHyper,
    n_params: usize,
    start: usize,
    end: usize,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    tracker: Option<MemoryTracker>,
}

impl ZeroAdam {
    /// Creates the shard owned by `rank` of a `world`-way sharded Adam
    /// over `n_params` flattened parameters.
    pub fn new(
        n_params: usize,
        rank: usize,
        world: usize,
        hyper: AdamHyper,
        tracker: Option<MemoryTracker>,
    ) -> Self {
        let (start, end) = shard_range(n_params, world, rank);
        let me = ZeroAdam {
            hyper,
            n_params,
            start,
            end,
            m: vec![0.0; end - start],
            v: vec![0.0; end - start],
            t: 0,
            tracker,
        };
        if let Some(t) = &me.tracker {
            t.alloc(MemoryCategory::OptimizerState, me.state_bytes());
        }
        me
    }

    /// Bytes of this rank's optimizer state (2 moments × shard length).
    pub fn state_bytes(&self) -> u64 {
        ((self.m.len() + self.v.len()) * 4) as u64
    }

    /// The `[start, end)` parameter range this rank owns.
    pub fn shard(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Steps taken so far.
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// One sharded step: reduce-scatter `flat_grads` (mean across ranks),
    /// update the owned shard of `flat_params`, all-gather the result.
    ///
    /// Every rank must call this collectively with equal-length buffers.
    /// On a communication failure the optimizer state is unchanged except
    /// for the timestep, which is only advanced on success.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree with construction.
    pub fn step(
        &mut self,
        comm: &mut Communicator,
        flat_params: &mut Vec<f32>,
        flat_grads: &[f32],
        lr: f32,
    ) -> Result<(), CommError> {
        assert_eq!(flat_grads.len(), self.n_params, "grad length changed");
        // (1) Each rank receives the summed gradient of its shard.
        let shard_grad = comm.reduce_scatter_sum(flat_grads)?;
        self.step_with_reduced_shard(comm, flat_params, shard_grad, lr)
    }

    /// The tail of [`step`](Self::step) for callers that have already
    /// reduced this rank's shard gradient themselves — the
    /// backward-overlapped DDP path delivers the **summed** (not yet
    /// averaged) shard via per-bucket reduce-to-owner while backward is
    /// still running, then finishes the step here. Scales by `1/world`,
    /// applies [`adam_update`] to the owned shard, and all-gathers the
    /// full parameter vector; every rank must call collectively.
    ///
    /// The element order of `shard_grad`'s accumulation must match
    /// [`Communicator::reduce_scatter_sum`] (own contribution first, then
    /// peers ascending) for results to stay bitwise identical to the
    /// unoverlapped path.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree with construction.
    pub fn step_with_reduced_shard(
        &mut self,
        comm: &mut Communicator,
        flat_params: &mut Vec<f32>,
        mut shard_grad: Vec<f32>,
        lr: f32,
    ) -> Result<(), CommError> {
        assert_eq!(flat_params.len(), self.n_params, "param length changed");
        assert_eq!(
            shard_grad.len(),
            self.end - self.start,
            "shard length changed"
        );
        let inv = 1.0 / comm.world() as f32;
        shard_grad.iter_mut().for_each(|g| *g *= inv);
        if let Some(t) = &self.tracker {
            t.alloc(MemoryCategory::Workspace, (shard_grad.len() * 4) as u64);
        }

        // (2) Update the owned parameter shard.
        self.t += 1;
        adam_update(
            &mut flat_params[self.start..self.end],
            &shard_grad,
            &mut self.m,
            &mut self.v,
            self.t,
            lr,
            &self.hyper,
        );
        if let Some(t) = &self.tracker {
            t.free(MemoryCategory::Workspace, (shard_grad.len() * 4) as u64);
        }

        // (3) Re-assemble the full parameter vector everywhere.
        let gathered = comm.all_gather(&flat_params[self.start..self.end], self.n_params)?;
        *flat_params = gathered;
        Ok(())
    }

    /// This rank's shard of the first/second Adam moments.
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    /// Collectively assembles the **full** (unsharded) moment vectors.
    /// Used to checkpoint ZeRO state in a world-size-independent layout
    /// so a run can resume with a different number of ranks.
    pub fn gather_state(
        &self,
        comm: &mut Communicator,
    ) -> Result<(Vec<f32>, Vec<f32>, u64), CommError> {
        let m = comm.all_gather(&self.m, self.n_params)?;
        let v = comm.all_gather(&self.v, self.n_params)?;
        Ok((m, v, self.t))
    }

    /// Rebuilds a rank's shard from full moment vectors (the inverse of
    /// [`gather_state`](Self::gather_state)), re-partitioned for a
    /// possibly different `world` — the elastic-resume path.
    ///
    /// # Panics
    ///
    /// Panics if the moment vectors are not `n_params` long.
    #[allow(clippy::too_many_arguments)]
    pub fn from_full_state(
        n_params: usize,
        rank: usize,
        world: usize,
        hyper: AdamHyper,
        tracker: Option<MemoryTracker>,
        full_m: &[f32],
        full_v: &[f32],
        t: u64,
    ) -> Self {
        assert_eq!(full_m.len(), n_params, "first-moment length mismatch");
        assert_eq!(full_v.len(), n_params, "second-moment length mismatch");
        let mut me = Self::new(n_params, rank, world, hyper, tracker);
        me.m.copy_from_slice(&full_m[me.start..me.end]);
        me.v.copy_from_slice(&full_v[me.start..me.end]);
        me.t = t;
        me
    }
}

impl Drop for ZeroAdam {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.free(MemoryCategory::OptimizerState, self.state_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use matgnn_model::ParamSet;
    use matgnn_tensor::Tensor;
    use matgnn_train::{Adam, Optimizer};
    use std::thread;

    /// Reference: full (unsharded) Adam over the same flat problem.
    fn reference_adam(params: &[f32], grads_per_step: &[Vec<f32>], lr: f32) -> Vec<f32> {
        let mut set = ParamSet::new();
        set.push(
            "flat",
            Tensor::from_vec(params.len(), params.to_vec()).unwrap(),
        );
        let mut opt = Adam::new(&set, AdamHyper::default(), None);
        for g in grads_per_step {
            let gt = vec![Tensor::from_vec(g.len(), g.clone()).unwrap()];
            opt.step(&mut set, &gt, lr);
        }
        set.tensor(0).to_vec()
    }

    #[test]
    fn sharded_step_matches_full_adam() {
        let n = 23; // deliberately not divisible by world
        let world = 4;
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        // Three steps of per-rank gradients; DDP semantics: the effective
        // gradient is the mean across ranks.
        let rank_grad = |step: usize, rank: usize| -> Vec<f32> {
            (0..n)
                .map(|i| ((i + step) as f32 * 0.11).cos() * (rank + 1) as f32)
                .collect()
        };
        let mean_grads: Vec<Vec<f32>> = (0..3)
            .map(|s| {
                (0..n)
                    .map(|i| (0..world).map(|r| rank_grad(s, r)[i]).sum::<f32>() / world as f32)
                    .collect()
            })
            .collect();
        let expect = reference_adam(&init, &mean_grads, 0.01);

        let comms = Communicator::create(world, CostModel::default());
        let results: Vec<Vec<f32>> = thread::scope(|scope| {
            let mut handles = Vec::new();
            for mut comm in comms {
                let init = init.clone();
                handles.push(scope.spawn(move || {
                    let rank = comm.rank();
                    let mut zero = ZeroAdam::new(n, rank, world, AdamHyper::default(), None);
                    let mut params = init;
                    for s in 0..3 {
                        let g = rank_grad(s, rank);
                        zero.step(&mut comm, &mut params, &g, 0.01)
                            .expect("healthy group");
                    }
                    params
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, got) in results.iter().enumerate() {
            for i in 0..n {
                assert!(
                    (got[i] - expect[i]).abs() < 1e-5,
                    "rank {rank} param {i}: {} vs {}",
                    got[i],
                    expect[i]
                );
            }
        }
        // All ranks agree bit-for-bit (they hold gathered copies).
        for r in 1..world {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn state_bytes_shrink_with_world() {
        let n = 1000;
        let full: u64 = ZeroAdam::new(n, 0, 1, AdamHyper::default(), None).state_bytes();
        let quarter = ZeroAdam::new(n, 0, 4, AdamHyper::default(), None).state_bytes();
        assert_eq!(full, 8000);
        assert_eq!(quarter, 2000);
    }

    #[test]
    fn tracker_registers_sharded_state() {
        let tracker = MemoryTracker::new();
        {
            let _z = ZeroAdam::new(100, 1, 4, AdamHyper::default(), Some(tracker.clone()));
            assert_eq!(tracker.current().get(MemoryCategory::OptimizerState), 200);
        }
        assert_eq!(tracker.current().get(MemoryCategory::OptimizerState), 0);
    }

    #[test]
    fn gathered_state_reshards_to_any_world() {
        let n = 11;
        let comms = Communicator::create(2, CostModel::default());
        let full: Vec<(Vec<f32>, Vec<f32>, u64)> = thread::scope(|scope| {
            let mut handles = Vec::new();
            for mut comm in comms {
                handles.push(scope.spawn(move || {
                    let rank = comm.rank();
                    let mut zero = ZeroAdam::new(n, rank, 2, AdamHyper::default(), None);
                    let mut params = vec![0.5f32; n];
                    for s in 0..2 {
                        let g: Vec<f32> =
                            (0..n).map(|i| ((i * (s + 1)) as f32 * 0.1).sin()).collect();
                        zero.step(&mut comm, &mut params, &g, 0.01).unwrap();
                    }
                    zero.gather_state(&mut comm).unwrap()
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Both ranks gathered identical full state.
        assert_eq!(full[0], full[1]);
        let (m, v, t) = &full[0];
        assert_eq!(*t, 2);
        // Resharding to world=3 slices the same full vectors.
        for rank in 0..3 {
            let z = ZeroAdam::from_full_state(n, rank, 3, AdamHyper::default(), None, m, v, *t);
            let (s, e) = z.shard();
            assert_eq!(z.moments().0, &m[s..e]);
            assert_eq!(z.moments().1, &v[s..e]);
            assert_eq!(z.timestep(), *t);
        }
    }

    #[test]
    fn trailing_rank_may_be_empty() {
        // 5 params over 4 ranks: chunk=2 → rank 3 owns nothing but must
        // still participate in collectives.
        let z = ZeroAdam::new(5, 3, 4, AdamHyper::default(), None);
        assert_eq!(z.shard(), (5, 5));
        assert_eq!(z.state_bytes(), 0);
    }
}
