//! The distributed halo-exchange channel: [`DistHalo`] implements the
//! model crate's [`HaloChannel`] over the [`Communicator`] slot
//! machinery, so graph-parallel ranks push owner rows into peers' ghost
//! slots with the same rendezvous, staging-buffer recycling, timeout,
//! and poisoning semantics as every other collective in this crate.
//!
//! # Protocol
//!
//! All four channel operations follow the crate's publish/read/finish
//! shape: each rank stages one recycler-backed buffer (its parts' owned
//! rows, ghost adjoints, or flat gradient contributions, concatenated
//! in ascending part order), a generation barrier makes every stage
//! visible, readers copy exactly the peer rows they need under the
//! group lock, and `finish` recycles the staging buffers. Because ranks
//! own contiguous ascending runs of parts and parts own contiguous
//! ascending atom ranges, a rank's staged owned-row buffer *is* a
//! contiguous slice of the global row space — ghost reads are a single
//! offset computation, no index tables on the wire.
//!
//! # Bitwise parity
//!
//! Every reduction here replays the exact accumulation loops of the
//! in-process [`LocalHalo`](matgnn_model::LocalHalo) reference —
//! ascending part order, same per-row element order, the contributor's
//! own block added at its own position — over bit-identical staged
//! values. A graph-parallel step therefore produces the same bits at
//! every world size, which `exp_graphpar` gates on.

use std::sync::Arc;
use std::time::Duration;

use matgnn_graph::{parts_for_rank, PartitionPlan};
use matgnn_model::graphpar::{add_ghost_rows, add_into};
use matgnn_model::{HaloChannel, HaloError};
use matgnn_tensor::Tensor;

use crate::collective::{CommError, Communicator};
use crate::fault::FaultKind;

/// The distributed [`HaloChannel`]. Borrows the rank's [`Communicator`]
/// for the duration of one graph-parallel step; construct one per step
/// so armed faults and per-step telemetry scope naturally.
pub struct DistHalo<'a> {
    comm: &'a mut Communicator,
    armed: Option<FaultKind>,
}

impl<'a> DistHalo<'a> {
    /// Wraps a communicator for one graph-parallel step over `plan`,
    /// recording this rank's halo-fraction sample.
    pub fn new(comm: &'a mut Communicator, plan: &PartitionPlan) -> Self {
        let (p0, p1) = parts_for_rank(plan.n_parts(), comm.world(), comm.rank());
        let owned: usize = (p0..p1).map(|p| plan.part(p).n_owned()).sum();
        let ghosts: usize = (p0..p1).map(|p| plan.part(p).ghosts().len()).sum();
        matgnn_telemetry::gauge_set("comm.halo.ghost_atoms", ghosts as f64);
        if owned + ghosts > 0 {
            matgnn_telemetry::histogram_record(
                "comm.halo.fraction",
                ghosts as f64 / (owned + ghosts) as f64,
            );
        }
        DistHalo { comm, armed: None }
    }

    /// Arms a fault to fire inside this step's first halo exchange:
    /// `Kill` panics mid-collective (the unwinding rank's communicator
    /// poisons the group), `Hang` stops making progress until the
    /// watchdog or a peer timeout poisons the group, `Delay` stalls the
    /// exchange. Other kinds are step-boundary faults and are ignored.
    pub fn arm_fault(&mut self, kind: FaultKind) {
        self.armed = Some(kind);
    }

    /// The underlying communicator (for stats and recovery).
    pub fn comm(&self) -> &Communicator {
        self.comm
    }

    fn fire_armed(&mut self) -> Result<(), HaloError> {
        match self.armed.take() {
            Some(FaultKind::Kill) => {
                panic!(
                    "injected fault: rank {} killed in halo exchange",
                    self.comm.rank()
                )
            }
            Some(FaultKind::Hang) => loop {
                if self.comm.is_poisoned() {
                    return Err(HaloError(format!(
                        "rank {} hung in halo exchange until the group was poisoned",
                        self.comm.rank()
                    )));
                }
                std::thread::sleep(Duration::from_millis(1));
            },
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn chunk(&self, plan: &PartitionPlan) -> usize {
        plan.n_parts().div_ceil(self.comm.world())
    }

    fn lift(&mut self, e: CommError) -> HaloError {
        HaloError(e.to_string())
    }
}

/// Concatenates row blocks into one staging vector.
fn pack(blocks: &[Tensor]) -> Vec<f32> {
    let _span = matgnn_telemetry::span("comm.halo.pack");
    let total: usize = blocks.iter().map(|t| t.data().len()).sum();
    let mut flat = Vec::with_capacity(total);
    for b in blocks {
        flat.extend_from_slice(b.data());
    }
    flat
}

impl HaloChannel for DistHalo<'_> {
    fn part_range(&self, plan: &PartitionPlan) -> (usize, usize) {
        parts_for_rank(plan.n_parts(), self.comm.world(), self.comm.rank())
    }

    fn exchange_ghosts(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError> {
        let _span = matgnn_telemetry::span("comm.halo.exchange");
        self.fire_armed()?;
        let world = self.comm.world();
        let my_rank = self.comm.rank();
        let chunk = self.chunk(plan);
        let (p0, p1) = self.part_range(plan);
        let flat = pack(owned);
        self.comm.publish_slice(&flat).map_err(|e| self.lift(e))?;
        let mut cross_bytes = 0u64;
        let out = self
            .comm
            .read_slots(|slots| {
                let _span = matgnn_telemetry::span("comm.halo.unpack");
                let mut out = Vec::with_capacity(p1 - p0);
                for p in p0..p1 {
                    let part = plan.part(p);
                    let mut data = Vec::with_capacity(part.ghosts().len() * cols);
                    for &g in part.ghosts() {
                        let owner_rank = plan.owner_part(g) / chunk;
                        let base = {
                            let (a, _) = parts_for_rank(plan.n_parts(), world, owner_rank);
                            plan.offsets()[a]
                        };
                        let buf: &Arc<Vec<f32>> =
                            slots[owner_rank].as_ref().expect("peer staged its rows");
                        data.extend_from_slice(&buf[(g - base) * cols..(g - base + 1) * cols]);
                        if owner_rank != my_rank {
                            cross_bytes += (cols * 4) as u64;
                        }
                    }
                    out.push(
                        Tensor::from_vec((part.ghosts().len(), cols), data)
                            .expect("ghost block shape"),
                    );
                }
                out
            })
            .map_err(|e| self.lift(e))?;
        self.comm.finish().map_err(|e| self.lift(e))?;
        self.comm.account_traffic(cross_bytes);
        matgnn_telemetry::counter_add("comm.halo.bytes", cross_bytes);
        Ok(out)
    }

    fn accumulate_adjoints(
        &mut self,
        plan: &PartitionPlan,
        own: &[Tensor],
        ghost: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError> {
        let _span = matgnn_telemetry::span("comm.halo.exchange");
        let world = self.comm.world();
        let my_rank = self.comm.rank();
        let v = plan.n_parts();
        let chunk = self.chunk(plan);
        let (p0, p1) = self.part_range(plan);
        let flat = pack(ghost);
        self.comm.publish_slice(&flat).map_err(|e| self.lift(e))?;
        let mut cross_bytes = 0u64;
        let out = self
            .comm
            .read_slots(|slots| {
                let _span = matgnn_telemetry::span("comm.halo.unpack");
                let mut out = Vec::with_capacity(p1 - p0);
                for p in p0..p1 {
                    let part = plan.part(p);
                    let (s, e) = part.owned_range();
                    let mut acc = vec![0.0f32; part.n_owned() * cols];
                    // The canonical contributor loop: ascending part
                    // order, identical to LocalHalo at any world size.
                    for q in 0..v {
                        if q == p {
                            add_into(&mut acc, own[p - p0].data());
                            continue;
                        }
                        let owner_rank = q / chunk;
                        let (a, _) = parts_for_rank(v, world, owner_rank);
                        let base: usize = (a..q).map(|q2| plan.part(q2).ghosts().len()).sum();
                        let buf: &Arc<Vec<f32>> =
                            slots[owner_rank].as_ref().expect("peer staged adjoints");
                        let rows = plan.part(q).ghosts().len();
                        let block = &buf[base * cols..(base + rows) * cols];
                        add_ghost_rows(&mut acc, plan, q, block, s, e, cols);
                        if owner_rank != my_rank {
                            let in_range = plan
                                .part(q)
                                .ghosts()
                                .iter()
                                .filter(|&&g| g >= s && g < e)
                                .count();
                            cross_bytes += (in_range * cols * 4) as u64;
                        }
                    }
                    out.push(
                        Tensor::from_vec((part.n_owned(), cols), acc).expect("owned block shape"),
                    );
                }
                out
            })
            .map_err(|e| self.lift(e))?;
        self.comm.finish().map_err(|e| self.lift(e))?;
        self.comm.account_traffic(cross_bytes);
        matgnn_telemetry::counter_add("comm.halo.bytes", cross_bytes);
        Ok(out)
    }

    fn gather_rows(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Tensor, HaloError> {
        let _span = matgnn_telemetry::span("comm.halo.exchange");
        let world = self.comm.world();
        let my_rank = self.comm.rank();
        let n = plan.n_nodes();
        let flat = pack(owned);
        self.comm.publish_slice(&flat).map_err(|e| self.lift(e))?;
        let mut cross_bytes = 0u64;
        let data = self
            .comm
            .read_slots(|slots| {
                let _span = matgnn_telemetry::span("comm.halo.unpack");
                let mut data = Vec::with_capacity(n * cols);
                for (r, slot) in slots.iter().enumerate().take(world) {
                    let buf = slot.as_ref().expect("peer staged its rows");
                    data.extend_from_slice(buf);
                    if r != my_rank {
                        cross_bytes += (buf.len() * 4) as u64;
                    }
                }
                data
            })
            .map_err(|e| self.lift(e))?;
        self.comm.finish().map_err(|e| self.lift(e))?;
        self.comm.account_traffic(cross_bytes);
        matgnn_telemetry::counter_add("comm.halo.bytes", cross_bytes);
        Tensor::from_vec((n, cols), data).map_err(|e| HaloError(format!("gathered shape: {e:?}")))
    }

    fn reduce_parts(
        &mut self,
        plan: &PartitionPlan,
        per_part: &[Vec<f32>],
        len: usize,
    ) -> Result<Vec<f32>, HaloError> {
        let _span = matgnn_telemetry::span("comm.halo.exchange");
        let world = self.comm.world();
        let my_rank = self.comm.rank();
        let v = plan.n_parts();
        let chunk = self.chunk(plan);
        let flat: Vec<f32> = {
            let _span = matgnn_telemetry::span("comm.halo.pack");
            per_part.iter().flatten().copied().collect()
        };
        self.comm.publish_slice(&flat).map_err(|e| self.lift(e))?;
        let mut cross_bytes = 0u64;
        let acc = self
            .comm
            .read_slots(|slots| {
                let _span = matgnn_telemetry::span("comm.halo.unpack");
                let mut acc = vec![0.0f32; len];
                // Ascending part order — never grouped per rank, so the
                // sum's bits are independent of the world size.
                for q in 0..v {
                    let owner_rank = q / chunk;
                    let (a, _) = parts_for_rank(v, world, owner_rank);
                    let buf = slots[owner_rank].as_ref().expect("peer staged gradients");
                    add_into(&mut acc, &buf[(q - a) * len..(q - a + 1) * len]);
                    if owner_rank != my_rank {
                        cross_bytes += (len * 4) as u64;
                    }
                }
                acc
            })
            .map_err(|e| self.lift(e))?;
        self.comm.finish().map_err(|e| self.lift(e))?;
        self.comm.account_traffic(cross_bytes);
        matgnn_telemetry::counter_add("comm.halo.bytes", cross_bytes);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CostModel;
    use matgnn_graph::{AtomicStructure, Element};
    use matgnn_model::{graphpar_step, local_batches, Egnn, EgnnConfig, GraphParLoss, LocalHalo};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::thread;

    fn slab_structure(n: usize, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i / 4) as f64 * 1.1 + rng.gen_range(-0.25..0.25),
                    ((i % 4) / 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                    (i % 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    fn model_and_plan(n_parts: usize) -> (Egnn, matgnn_graph::PartitionPlan) {
        let s = slab_structure(32, 41);
        let model = Egnn::new(EgnnConfig::new(12, 2).with_seed(7));
        let plan = matgnn_graph::PartitionPlan::build(&s, 2.5, n_parts);
        (model, plan)
    }

    fn run_dist(world: usize, n_parts: usize) -> matgnn_model::GraphParOutput {
        let comms = Communicator::create(world, CostModel::default());
        let outs: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        let (model, plan) = model_and_plan(n_parts);
                        let (p0, p1) = parts_for_rank(n_parts, world, comm.rank());
                        let batches = local_batches(&plan, p0, p1);
                        let mut ch = DistHalo::new(&mut comm, &plan);
                        graphpar_step(&model, &plan, &batches, &mut ch, &GraphParLoss::default())
                            .expect("healthy group")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Replicated outputs: every rank must return the same bits.
        let first = &outs[0];
        for o in &outs[1..] {
            assert_eq!(o.loss.to_bits(), first.loss.to_bits());
            assert_eq!(o.energy.to_bits(), first.energy.to_bits());
            for (a, b) in o.grads.iter().zip(&first.grads) {
                assert_eq!(
                    a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
        outs.into_iter().next().unwrap()
    }

    #[test]
    fn world_sizes_agree_bitwise_with_local_reference() {
        let n_parts = 4;
        let (model, plan) = model_and_plan(n_parts);
        let batches = local_batches(&plan, 0, n_parts);
        let mut local = LocalHalo::new();
        let reference = graphpar_step(
            &model,
            &plan,
            &batches,
            &mut local,
            &GraphParLoss::default(),
        )
        .unwrap();
        for world in [1, 2, 4] {
            let out = run_dist(world, n_parts);
            assert_eq!(
                out.loss.to_bits(),
                reference.loss.to_bits(),
                "loss diverged at W={world}"
            );
            assert_eq!(out.energy.to_bits(), reference.energy.to_bits());
            for (i, (a, b)) in out.grads.iter().zip(&reference.grads).enumerate() {
                assert_eq!(
                    a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "grad {i} diverged at W={world}"
                );
            }
        }
    }

    #[test]
    fn forces_are_replicated_and_match_local() {
        let n_parts = 3;
        let (model, plan) = model_and_plan(n_parts);
        let batches = local_batches(&plan, 0, n_parts);
        let mut local = LocalHalo::new();
        let reference = graphpar_step(
            &model,
            &plan,
            &batches,
            &mut local,
            &GraphParLoss::default(),
        )
        .unwrap();
        let out = run_dist(3, n_parts);
        assert_eq!(
            out.forces
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            reference
                .forces
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn killed_rank_poisons_the_halo_group() {
        let world = 3;
        let comms =
            Communicator::create_with_timeout(world, CostModel::default(), Duration::from_secs(5));
        let results: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        let (model, plan) = model_and_plan(3);
                        let rank = comm.rank();
                        let (p0, p1) = parts_for_rank(3, world, rank);
                        let batches = local_batches(&plan, p0, p1);
                        let mut ch = DistHalo::new(&mut comm, &plan);
                        if rank == 1 {
                            ch.arm_fault(FaultKind::Kill);
                        }
                        graphpar_step(&model, &plan, &batches, &mut ch, &GraphParLoss::default())
                            .map(|o| o.loss)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        // Rank 1 panicked; survivors observed the poisoned group as a
        // HaloError instead of hanging.
        assert!(results[1].is_err(), "rank 1 should have died");
        for (r, res) in results.iter().enumerate() {
            if r != 1 {
                let step = res.as_ref().expect("survivor thread should not panic");
                assert!(step.is_err(), "rank {r} should see a halo error");
            }
        }
    }

    #[test]
    fn hung_rank_unblocks_after_peer_timeout() {
        let world = 2;
        let comms = Communicator::create_with_timeout(
            world,
            CostModel::default(),
            Duration::from_millis(200),
        );
        let results: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        let (model, plan) = model_and_plan(2);
                        let rank = comm.rank();
                        let (p0, p1) = parts_for_rank(2, world, rank);
                        let batches = local_batches(&plan, p0, p1);
                        let mut ch = DistHalo::new(&mut comm, &plan);
                        if rank == 0 {
                            ch.arm_fault(FaultKind::Hang);
                        }
                        graphpar_step(&model, &plan, &batches, &mut ch, &GraphParLoss::default())
                            .map(|o| o.loss)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The peer's rendezvous timeout poisons the group; both the
        // hung rank and the waiting peer return errors, neither hangs.
        for (r, res) in results.iter().enumerate() {
            assert!(res.is_err(), "rank {r} should fail, not hang");
        }
    }

    #[test]
    fn cross_rank_bytes_are_accounted() {
        let world = 2;
        let n_parts = 2;
        let comms = Communicator::create(world, CostModel::default());
        let stats: Vec<_> = thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut comm| {
                    scope.spawn(move || {
                        let (model, plan) = model_and_plan(n_parts);
                        let (p0, p1) = parts_for_rank(n_parts, world, comm.rank());
                        let batches = local_batches(&plan, p0, p1);
                        let mut ch = DistHalo::new(&mut comm, &plan);
                        graphpar_step(&model, &plan, &batches, &mut ch, &GraphParLoss::default())
                            .expect("healthy group");
                        comm.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (r, st) in stats.iter().enumerate() {
            assert!(
                st.bytes_moved > 0,
                "rank {r} should account cross-rank halo traffic"
            );
            assert!(st.collectives > 0);
        }
        // A single-rank run moves nothing across ranks.
        let comms = Communicator::create(1, CostModel::default());
        let mut comm = comms.into_iter().next().unwrap();
        let (model, plan) = model_and_plan(n_parts);
        let batches = local_batches(&plan, 0, n_parts);
        let mut ch = DistHalo::new(&mut comm, &plan);
        graphpar_step(&model, &plan, &batches, &mut ch, &GraphParLoss::default()).unwrap();
        assert_eq!(comm.stats().bytes_moved, 0);
    }
}
