//! Distributed data-parallel (DDP) training over simulated ranks, with
//! fault tolerance.
//!
//! Each rank (an OS thread standing in for one GPU) holds a full model
//! replica, processes its own slice of every global batch, and the ranks
//! all-reduce gradient means before stepping identical optimizers — the
//! PyTorch-DDP semantics HydraGNN uses. With [`DdpConfig::zero`] the full
//! Adam replica is replaced by a [`ZeroAdam`] shard (reduce-scatter +
//! all-gather), and [`DdpConfig::checkpointing`] switches the step to the
//! recompute path — together, the paper's Sec. V configuration matrix.
//!
//! # Fault tolerance
//!
//! Every collective is timeout-bounded and returns `Result` (see
//! [`CommError`]). When a rank dies — by panic, or injected through a
//! [`FaultPlan`] — the group is poisoned and every survivor unwinds to
//! the supervised recovery loop: bounded exponential backoff, then
//! [`Communicator::split_survivors`] re-forms a smaller group (elastic
//! world size), the newest intact [`TrainCheckpoint`] is reloaded, and
//! training continues from that step. Checkpoints are written atomically
//! by the group's rank 0 every [`DdpConfig::checkpoint_every`] steps in a
//! world-size-independent layout (ZeRO moments are gathered first), so a
//! 4-rank checkpoint restores cleanly into a 3-rank group.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use matgnn_data::{collate, Dataset, Normalizer, Prefetcher, Sample, Targets};
use matgnn_graph::GraphBatch;
use matgnn_model::GnnModel;
use matgnn_tensor::{MemoryBreakdown, MemoryCategory, MemoryTracker, Tensor};
use matgnn_train::{
    clip_grad_norm, latest_in, params_finite, prune_checkpoints, train_step, train_step_with_sink,
    Adam, AdamHyper, AdamState, AnomalyDetector, LossConfig, LrSchedule, Optimizer, RollbackBudget,
    SupervisorConfig, TrainCheckpoint, Verdict,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::supervisor::{Heartbeat, ParkGuard, Watchdog};
use crate::{
    shard_range, CommError, CommStats, Communicator, CostModel, FaultKind, FaultPlan, ZeroAdam,
};

/// Base of the bounded exponential backoff between recovery attempts.
const BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Default gradient-bucket size (floats) for the backward-overlapped
/// all-reduce when [`DdpConfig::bucket_size`] is unset.
const DEFAULT_OVERLAP_BUCKET_FLOATS: usize = 8192;

/// Configuration of a DDP run.
#[derive(Debug, Clone)]
pub struct DdpConfig {
    /// Number of simulated ranks ("GPUs").
    pub world: usize,
    /// Passes over the training set.
    pub epochs: usize,
    /// Graphs per rank per step (global batch = `world × batch_size`).
    pub batch_size: usize,
    /// Base learning rate.
    pub base_lr: f32,
    /// LR schedule.
    pub schedule: LrSchedule,
    /// Per-rank gradient clipping before reduction (`None` disables).
    pub grad_clip: Option<f32>,
    /// Training objective.
    pub loss: LossConfig,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Shuffle seed.
    pub seed: u64,
    /// Activation checkpointing on each rank.
    pub checkpointing: bool,
    /// ZeRO-1 optimizer-state sharding instead of replicated Adam.
    pub zero: bool,
    /// Interconnect cost model for modeled communication time.
    pub cost: CostModel,
    /// Gradient bucketing: all-reduce in chunks of at most this many
    /// floats (`None` = one collective for the whole gradient; with
    /// [`overlap_comm`](Self::overlap_comm) unset `None` also defaults the
    /// overlapped bucket size). With `overlap_comm` the buckets are what
    /// gets handed to the communication thread as backward finalizes
    /// them, exactly as real DDP overlaps the all-reduce with the tail of
    /// the backward pass; without it they are reduced sequentially and
    /// only trade per-collective latency against staging-buffer size. The
    /// result is bit-identical in every combination (tested).
    pub bucket_size: Option<usize>,
    /// Batches to decode ahead of the training loop on a background
    /// producer thread per rank (0 = fetch synchronously). Any depth is
    /// bitwise-identical to the synchronous path; injected transient I/O
    /// faults are retried inside the producer with the same backoff.
    pub prefetch_depth: usize,
    /// Overlap gradient reduction with the backward pass: buckets are
    /// handed to a per-rank communication thread the moment backward
    /// finalizes their gradients, and the optimizer step waits only for
    /// the remainder. Requires [`grad_clip`](Self::grad_clip) to be
    /// `None` (pre-reduction global-norm clipping needs every gradient
    /// before the first collective could start) and a world of at least
    /// two; otherwise the step silently runs unoverlapped. Results are
    /// bitwise identical either way — overlap moves work in wall time,
    /// never reorders arithmetic. Hidden time is credited to
    /// [`CommStats::overlapped_seconds`].
    pub overlap_comm: bool,
    /// Rendezvous timeout for every collective.
    pub comm_timeout: Duration,
    /// Where to write [`TrainCheckpoint`]s (`None` disables durability —
    /// a failure then restarts training from scratch).
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many optimizer steps (0 disables
    /// periodic checkpoints even when a directory is set).
    pub checkpoint_every: usize,
    /// Resume from the newest intact checkpoint in `checkpoint_dir`
    /// before the first step (no-op when none exists).
    pub resume: bool,
    /// Injected fault schedule (empty = run clean).
    pub fault_plan: FaultPlan,
    /// How many times a surviving rank will recover (re-form + reload)
    /// before giving up.
    pub max_recoveries: usize,
    /// Numerical-anomaly supervision: per-step loss/parameter checks, a
    /// rank-consensus verdict, and rollback to the last good checkpoint
    /// (`None` disables — anomalies then propagate unchecked, as before).
    pub supervise: Option<SupervisorConfig>,
    /// Keep only the newest this-many `step-*.ckpt` files, pruning older
    /// ones after each save (0 keeps everything). The supervisor's
    /// rollback anchor is never pruned.
    pub keep_checkpoints: usize,
    /// Hang-watchdog progress deadline: a rank that is neither inside a
    /// collective nor beating its heartbeat for this long is declared
    /// dead (group poisoned → elastic recovery). Distinct from
    /// [`comm_timeout`](Self::comm_timeout), which polices time spent
    /// *inside* a collective. `None` disables the watchdog.
    pub progress_deadline: Option<Duration>,
}

impl Default for DdpConfig {
    fn default() -> Self {
        DdpConfig {
            world: 4,
            epochs: 1,
            batch_size: 4,
            base_lr: 3e-3,
            schedule: LrSchedule::Constant,
            grad_clip: Some(5.0),
            loss: LossConfig::default(),
            adam: AdamHyper::default(),
            seed: 0,
            checkpointing: false,
            zero: false,
            cost: CostModel::default(),
            bucket_size: None,
            prefetch_depth: 0,
            overlap_comm: false,
            comm_timeout: crate::DEFAULT_COMM_TIMEOUT,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            fault_plan: FaultPlan::none(),
            max_recoveries: 3,
            supervise: None,
            keep_checkpoints: 0,
            progress_deadline: None,
        }
    }
}

/// Per-rank outcome of a DDP run.
#[derive(Debug, Clone)]
pub struct RankStats {
    /// Rank index at launch (stable across elastic re-forms).
    pub rank: usize,
    /// Peak tracked bytes on this rank.
    pub peak_total: u64,
    /// Breakdown at the peak instant.
    pub peak: MemoryBreakdown,
    /// Collective traffic.
    pub comm: CommStats,
    /// Rank wall time.
    pub wall: Duration,
    /// Whether this rank died (injected kill, or hang caught by the
    /// watchdog) before finishing.
    pub killed: bool,
    /// Recovery cycles (re-form + checkpoint reload) this rank ran.
    pub recoveries: usize,
    /// Transient shard-fetch I/O errors this rank retried through.
    pub io_retries: usize,
    /// Supervisor rollbacks (anomaly → checkpoint restore) this rank ran.
    pub rollbacks: usize,
    /// Whether this rank's hang watchdog fired (it stalled past the
    /// progress deadline and was cut from the group).
    pub watchdog_fired: bool,
}

/// Outcome of [`train_ddp`].
#[derive(Debug, Clone)]
pub struct DdpReport {
    /// Mean training loss per epoch (averaged over ranks and steps).
    pub epoch_loss: Vec<f64>,
    /// Per-rank statistics (launch ranks, including killed ones).
    pub ranks: Vec<RankStats>,
    /// Optimization steps taken (per surviving rank).
    pub steps: usize,
    /// Longest rank wall time.
    pub wall: Duration,
    /// Recovery cycles the surviving ranks ran (max over ranks).
    pub recoveries: usize,
    /// World size at completion (smaller than `DdpConfig::world` if
    /// ranks died and the group re-formed elastically).
    pub final_world: usize,
    /// Launch ranks that died during the run.
    pub failed_ranks: Vec<usize>,
    /// Supervisor rollbacks the run took (max over ranks; the verdict is
    /// consensus, so surviving ranks agree).
    pub rollbacks: usize,
}

impl DdpReport {
    /// Mean wall time per optimization step.
    pub fn mean_step_wall(&self) -> Duration {
        if self.steps == 0 {
            Duration::ZERO
        } else {
            self.wall / self.steps as u32
        }
    }
}

/// Flattens aligned gradient tensors into one vector (collective layout).
pub fn flatten_tensors(tensors: &[Tensor]) -> Vec<f32> {
    let n: usize = tensors.iter().map(|t| t.numel()).sum();
    let mut out = Vec::with_capacity(n);
    for t in tensors {
        out.extend_from_slice(t.data());
    }
    out
}

/// Splits a flat vector back into tensors shaped like `template`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn unflatten_like(flat: &[f32], template: &[Tensor]) -> Vec<Tensor> {
    let total: usize = template.iter().map(|t| t.numel()).sum();
    assert_eq!(flat.len(), total, "flat buffer length mismatch");
    let mut out = Vec::with_capacity(template.len());
    let mut offset = 0;
    for t in template {
        let n = t.numel();
        out.push(
            Tensor::from_vec(t.shape().clone(), flat[offset..offset + n].to_vec())
                .expect("unflatten shape"),
        );
        offset += n;
    }
    out
}

/// The deterministic sample order for `epoch` (identical on every rank,
/// and identical before and after a checkpoint resume).
fn epoch_order(len: usize, seed: u64, epoch: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let shuffle = seed ^ epoch.wrapping_mul(0x9E37_79B9);
    order.shuffle(&mut StdRng::seed_from_u64(shuffle));
    order
}

/// One gradient bucket of the overlapped all-reduce: the params packed
/// into it (index + float offset) and its total float count.
struct BucketSpec {
    params: Vec<(usize, usize)>,
    floats: usize,
}

/// How the overlapped pipeline carves the gradient into comm units.
enum OverlapPlan {
    /// Replicated Adam: greedy reverse-order buckets, all-reduced (mean).
    Buckets {
        buckets: Vec<BucketSpec>,
        /// param index → (bucket index, float offset in the bucket).
        locate: Vec<(usize, usize)>,
    },
    /// ZeRO-1: one bucket per rank's [`shard_range`] of the flat
    /// gradient, reduce-summed to the shard owner.
    Shards {
        /// param index → float offset in the flat gradient.
        param_offsets: Vec<usize>,
        n_params: usize,
    },
}

/// Packs params into buckets of at most `cap` floats, walking in
/// **reverse** param order: backward finalizes later-used params first,
/// so reverse-order buckets tend to complete (and ship) while earlier
/// layers are still differentiating. Order is a heuristic only —
/// submission is forced in-order, so a misprediction costs overlap, not
/// correctness.
fn plan_buckets(sizes: &[usize], cap: usize) -> (Vec<BucketSpec>, Vec<(usize, usize)>) {
    let cap = cap.max(1);
    let mut buckets: Vec<BucketSpec> = Vec::new();
    let mut cur = BucketSpec {
        params: Vec::new(),
        floats: 0,
    };
    for p in (0..sizes.len()).rev() {
        if cur.floats > 0 && cur.floats + sizes[p] > cap {
            buckets.push(std::mem::replace(
                &mut cur,
                BucketSpec {
                    params: Vec::new(),
                    floats: 0,
                },
            ));
        }
        cur.params.push((p, cur.floats));
        cur.floats += sizes[p];
    }
    if !cur.params.is_empty() {
        buckets.push(cur);
    }
    let mut locate = vec![(0usize, 0usize); sizes.len()];
    for (b, spec) in buckets.iter().enumerate() {
        for &(p, off) in &spec.params {
            locate[p] = (b, off);
        }
    }
    (buckets, locate)
}

/// A reduction job handed to the communication thread.
struct BucketJob {
    id: u64,
    /// `None` → all-reduce (mean); `Some(r)` → reduce (sum) to rank `r`.
    root: Option<usize>,
    buf: Vec<f32>,
}

struct BucketResult {
    buf: Vec<f32>,
    err: Option<CommError>,
}

/// Per-rank overlapped-reduction pipeline: a dedicated communication
/// thread owning a [`crate::BucketComm`], fed bucket jobs as backward
/// finalizes them. Lives for one `run_until_done` call (re-created after
/// an elastic re-form so it tracks the current group) and is torn down
/// with [`finish`](Self::finish), which folds the comm thread's traffic
/// and the accumulated overlap credit back into the rank's
/// [`Communicator`].
struct OverlapPipeline {
    jobs: Option<mpsc::Sender<BucketJob>>,
    results: mpsc::Receiver<BucketResult>,
    handle: Option<std::thread::JoinHandle<CommStats>>,
    plan: Arc<OverlapPlan>,
    /// Recycled bucket buffers (zero steady-state allocation).
    spare: Vec<Vec<f32>>,
    next_id: u64,
    inflight: usize,
    cost: CostModel,
    world: usize,
    /// Modeled comm seconds hidden behind backward, applied at `finish`.
    overlap_credit: f64,
}

impl OverlapPipeline {
    /// Builds the pipeline for `comm`'s group, or `None` when overlap is
    /// inactive (flag unset, gradient clipping on, or world of one).
    fn create(comm: &Communicator, cfg: &DdpConfig, sizes: &[usize]) -> Option<OverlapPipeline> {
        if !cfg.overlap_comm || cfg.grad_clip.is_some() || comm.world() < 2 {
            return None;
        }
        let plan = if cfg.zero {
            let mut param_offsets = Vec::with_capacity(sizes.len());
            let mut acc = 0usize;
            for &s in sizes {
                param_offsets.push(acc);
                acc += s;
            }
            OverlapPlan::Shards {
                param_offsets,
                n_params: acc,
            }
        } else {
            let cap = cfg.bucket_size.unwrap_or(DEFAULT_OVERLAP_BUCKET_FLOATS);
            let (buckets, locate) = plan_buckets(sizes, cap);
            OverlapPlan::Buckets { buckets, locate }
        };
        let mut bc = comm.bucket_handle();
        let (jobs_tx, jobs_rx) = mpsc::channel::<BucketJob>();
        let (results_tx, results_rx) = mpsc::channel::<BucketResult>();
        // The comm thread works on this rank's behalf: tag its telemetry
        // events with the spawning rank so traces attribute bucket
        // reductions to the right process lane.
        let telemetry_rank = matgnn_telemetry::rank_raw();
        let handle = std::thread::Builder::new()
            .name("matgnn-grad-comm".into())
            .spawn(move || {
                matgnn_telemetry::set_rank_raw(telemetry_rank);
                for mut job in jobs_rx {
                    let err = match job.root {
                        None => bc.all_reduce_mean_bucket(job.id, &mut job.buf).err(),
                        Some(r) => bc.reduce_sum_bucket(job.id, &mut job.buf, r).err(),
                    };
                    if results_tx.send(BucketResult { buf: job.buf, err }).is_err() {
                        break;
                    }
                }
                bc.stats()
            })
            .expect("spawn gradient communication thread");
        Some(OverlapPipeline {
            jobs: Some(jobs_tx),
            results: results_rx,
            handle: Some(handle),
            plan: Arc::new(plan),
            spare: Vec::new(),
            next_id: 0,
            inflight: 0,
            cost: comm.cost_model(),
            world: comm.world(),
            overlap_credit: 0.0,
        })
    }

    /// A recycled buffer resized to `n` floats (contents arbitrary — the
    /// caller overwrites every element).
    fn take_buf(&mut self, n: usize) -> Vec<f32> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.resize(n, 0.0);
        buf
    }

    /// Hands a bucket to the communication thread. Every rank must submit
    /// the same sequence of buckets (enforced by in-order submission at
    /// the call sites).
    fn submit(&mut self, root: Option<usize>, buf: Vec<f32>) {
        let _span = matgnn_telemetry::span("comm.bucket_submit");
        let id = self.next_id;
        self.next_id += 1;
        self.inflight += 1;
        // A send can only fail if the worker died; the matching recv in
        // `collect` reports that as `Poisoned`.
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(BucketJob { id, root, buf });
        }
    }

    /// Waits for every in-flight bucket, returning the reduced buffers in
    /// submission order. Any bucket failure (or a dead worker) surfaces
    /// as the first error after all results are drained.
    fn collect(&mut self) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = matgnn_telemetry::span("comm.wait");
        let n = std::mem::take(&mut self.inflight);
        let mut bufs = Vec::with_capacity(n);
        let mut first_err = None;
        for _ in 0..n {
            match self.results.recv() {
                Ok(res) => {
                    if first_err.is_none() {
                        first_err = res.err;
                    }
                    bufs.push(res.buf);
                }
                Err(_) => return Err(first_err.unwrap_or(CommError::Poisoned)),
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(bufs),
        }
    }

    /// Credits the modeled link time of this step's buckets that fits
    /// before `t_bwd_end` (the end of backward) as overlapped. The link
    /// is modeled as serial: bucket `b` starts at
    /// `max(handoff_b, finish_{b-1})` and takes its ring-traffic time
    /// from the group cost model — the same accounting its collective
    /// recorded, so the credit can never exceed the modeled total.
    fn credit_step(
        &mut self,
        handoffs: &[Instant],
        floats: &[usize],
        reduce_to_root: bool,
        t_bwd_end: Instant,
    ) {
        let Some(&t0) = handoffs.first() else { return };
        let w = self.world as u64;
        let bwd = t_bwd_end.saturating_duration_since(t0).as_secs_f64();
        let mut link_free = 0.0f64;
        for (h, &f) in handoffs.iter().zip(floats) {
            let payload = (f * 4) as u64;
            let transferred = if reduce_to_root {
                payload * (w - 1) / w
            } else {
                payload * 2 * (w - 1) / w
            };
            let modeled = self.cost.seconds(transferred);
            let start = h.saturating_duration_since(t0).as_secs_f64().max(link_free);
            let finish = start + modeled;
            self.overlap_credit += (bwd.min(finish) - start).max(0.0);
            link_free = finish;
        }
    }

    /// Shuts the communication thread down and folds its traffic plus the
    /// accumulated overlap credit into `comm`'s statistics.
    fn finish(mut self, comm: &mut Communicator) {
        drop(self.jobs.take());
        if let Some(handle) = self.handle.take() {
            if let Ok(stats) = handle.join() {
                comm.absorb(stats);
            }
        }
        comm.credit_overlap(self.overlap_credit);
    }
}

/// Mutable per-rank training state — everything the recovery path must
/// rebuild from a checkpoint (or from scratch).
struct RankState<M> {
    replica: M,
    full_adam: Option<Adam>,
    zero_adam: Option<ZeroAdam>,
    epoch: u64,
    step_in_epoch: u64,
    global_step: u64,
    loss_acc: f64,
    loss_count: u64,
    epoch_loss: Vec<f64>,
}

/// Why a rank left the training loop.
enum RankExit {
    /// Injected kill: the rank poisoned the group and died.
    Killed,
    /// Injected hang: the rank stalled until its own watchdog poisoned
    /// the group, then died. Peers recover elastically without it.
    Hung,
    /// A collective failed; the caller decides whether to recover. The
    /// error is kept for debuggability (`Debug`-printed on give-up paths
    /// in tests) even though the recovery path treats all causes alike.
    Comm(#[allow(dead_code)] CommError),
    /// The supervisor's consensus verdict flagged a numerical anomaly;
    /// every rank takes this exit on the same step and the caller rolls
    /// back to the last good checkpoint. The group is *not* poisoned.
    Anomaly,
}

impl From<CommError> for RankExit {
    fn from(e: CommError) -> Self {
        RankExit::Comm(e)
    }
}

/// Per-rank supervision state, threaded through [`run_until_done`] so it
/// survives rollbacks (the detector must remember which steps it has
/// already judged, and the budget must keep counting across retries).
struct Supervision {
    detector: AnomalyDetector,
    budget: RollbackBudget,
    /// Step of the checkpoint the last rollback restored — pinned against
    /// pruning until the run ends.
    anchor: Option<u64>,
    /// Steps whose spike verdict already forced one rollback. Replay is
    /// bitwise-deterministic and the loss reading precedes the optimizer
    /// update, so a spike that recurs on re-execution is the run's true
    /// trajectory, not transient corruption — it is accepted the second
    /// time instead of burning the budget in a rollback livelock.
    /// (NaN/Inf stays anomalous on every encounter: the backed-off LR
    /// changes the *following* update, so those retries can converge.)
    spike_rollbacks: HashSet<u64>,
    /// `(global_step, this rank's loss accumulator)` at the last
    /// checkpoint boundary. Checkpoints store rank 0's local loss
    /// bookkeeping; restoring that on every rank would skew the
    /// rank-averaged epoch loss, so a rollback restores each rank's own
    /// shadowed accumulator instead.
    loss_shadow: Option<(u64, f64)>,
}

impl Supervision {
    fn new(cfg: &SupervisorConfig) -> Supervision {
        Supervision {
            detector: AnomalyDetector::new(cfg),
            budget: RollbackBudget::new(*cfg),
            anchor: None,
            spike_rollbacks: HashSet::new(),
            loss_shadow: None,
        }
    }
}

/// What the fault injector plants into the current step's numerics.
#[derive(Clone, Copy, PartialEq)]
enum Inject {
    /// Poison the first gradient value with NaN before reduction.
    NanGrad,
    /// Scale the local loss (post-step, pre-supervision) by this factor.
    Spike(u32),
}

/// Applies a [`Inject::Spike`] to a step's local loss (identity for any
/// other injection). The gradients are untouched — the spike simulates a
/// corrupted *reading*, and the supervisor must catch it from the loss
/// stream alone.
fn apply_spike(loss: f64, inject: Option<Inject>) -> f64 {
    match inject {
        Some(Inject::Spike(factor)) => loss * factor as f64,
        _ => loss,
    }
}

fn fresh_state<M: GnnModel + Clone>(
    proto: &M,
    cfg: &DdpConfig,
    rank: usize,
    world: usize,
    n_params: usize,
    tracker: &MemoryTracker,
) -> RankState<M> {
    let replica = proto.clone();
    let full_adam =
        (!cfg.zero).then(|| Adam::new(replica.params(), cfg.adam, Some(tracker.clone())));
    let zero_adam = cfg
        .zero
        .then(|| ZeroAdam::new(n_params, rank, world, cfg.adam, Some(tracker.clone())));
    RankState {
        replica,
        full_adam,
        zero_adam,
        epoch: 0,
        step_in_epoch: 0,
        global_step: 0,
        loss_acc: 0.0,
        loss_count: 0,
        epoch_loss: Vec::new(),
    }
}

/// Restores rank state from a checkpoint, re-sharding optimizer state for
/// the (possibly different) current world size.
fn restore_state<M: GnnModel + Clone>(
    st: &mut RankState<M>,
    ckpt: &TrainCheckpoint,
    cfg: &DdpConfig,
    rank: usize,
    world: usize,
    n_params: usize,
    tracker: &MemoryTracker,
) {
    let flat = ckpt.params.flatten();
    st.replica.params_mut().unflatten_from(&flat);
    if cfg.zero {
        st.zero_adam = Some(ZeroAdam::from_full_state(
            n_params,
            rank,
            world,
            cfg.adam,
            Some(tracker.clone()),
            &ckpt.adam.m,
            &ckpt.adam.v,
            ckpt.adam.t,
        ));
    } else {
        let mut adam = Adam::new(st.replica.params(), cfg.adam, Some(tracker.clone()));
        adam.restore_state(&ckpt.adam);
        st.full_adam = Some(adam);
    }
    st.epoch = ckpt.epoch;
    st.step_in_epoch = ckpt.step_in_epoch;
    st.global_step = ckpt.global_step;
    st.loss_acc = ckpt.loss_acc;
    st.loss_count = ckpt.loss_count;
    // Entries for completed epochs survive; the in-progress epoch reruns.
    st.epoch_loss.truncate(ckpt.epoch as usize);
}

/// One training step with backward-overlapped gradient reduction: the
/// early-gradient sink copies each finalized gradient into its bucket and
/// hands completed buckets (in plan order) to the communication thread
/// while backward keeps running; the optimizer step then waits only for
/// whatever communication is still in flight. Arithmetic is bitwise
/// identical to the unoverlapped step — same per-element accumulation
/// order, same Adam update — only the wall-clock placement of the
/// collectives moves.
#[allow(clippy::too_many_arguments)]
fn overlapped_step<M: GnnModel + Clone>(
    st: &mut RankState<M>,
    comm: &mut Communicator,
    cfg: &DdpConfig,
    batch: &GraphBatch,
    targets: &Targets,
    tracker: &MemoryTracker,
    lr: f32,
    pipe: &mut OverlapPipeline,
    inject: Option<Inject>,
) -> Result<f64, CommError> {
    // Fault injection: NaN goes into the first gradient backward hands to
    // the sink (before any reduction ships), exactly mirroring the
    // unoverlapped path's poisoned flat[0].
    let mut poison_next_grad = inject == Some(Inject::NanGrad);
    let plan = Arc::clone(&pipe.plan);
    let n_scalars = st.replica.params().n_scalars();
    let flat_bytes = (n_scalars * 4) as u64;
    match &*plan {
        OverlapPlan::Buckets { buckets, locate } => {
            let n_buckets = buckets.len();
            let mut bufs: Vec<Vec<f32>> = buckets.iter().map(|b| pipe.take_buf(b.floats)).collect();
            let mut remaining: Vec<usize> = buckets.iter().map(|b| b.params.len()).collect();
            let mut handoffs = Vec::with_capacity(n_buckets);
            let mut next_submit = 0usize;
            let loss = {
                let mut sink = |p: usize, g: Tensor| {
                    let (b, off) = locate[p];
                    bufs[b][off..off + g.numel()].copy_from_slice(g.data());
                    if std::mem::take(&mut poison_next_grad) {
                        bufs[b][off] = f32::NAN;
                    }
                    remaining[b] -= 1;
                    while next_submit < n_buckets && remaining[next_submit] == 0 {
                        let buf = std::mem::take(&mut bufs[next_submit]);
                        pipe.submit(None, buf);
                        handoffs.push(Instant::now());
                        next_submit += 1;
                    }
                };
                train_step_with_sink(
                    &st.replica,
                    batch,
                    targets,
                    &cfg.loss,
                    cfg.checkpointing,
                    Some(tracker),
                    &mut sink,
                )
            };
            let t_bwd_end = Instant::now();
            debug_assert_eq!(next_submit, n_buckets, "backward left buckets unsubmitted");
            tracker.alloc(MemoryCategory::Gradients, flat_bytes);
            let step_result: Result<(), CommError> = (|| {
                let reduced = pipe.collect()?;
                let floats: Vec<usize> = buckets.iter().map(|b| b.floats).collect();
                pipe.credit_step(&handoffs, &floats, false, t_bwd_end);
                let params = st.replica.params();
                let grads: Vec<Tensor> = (0..params.len())
                    .map(|p| {
                        let (b, off) = locate[p];
                        let t = params.tensor(p);
                        Tensor::from_vec(
                            t.shape().clone(),
                            reduced[b][off..off + t.numel()].to_vec(),
                        )
                        .expect("bucket gradient shape")
                    })
                    .collect();
                {
                    let _span = matgnn_telemetry::span("optimizer");
                    st.full_adam.as_mut().expect("full adam").step(
                        st.replica.params_mut(),
                        &grads,
                        lr,
                    );
                }
                pipe.spare.extend(reduced);
                Ok(())
            })();
            tracker.free(MemoryCategory::Gradients, flat_bytes);
            step_result?;
            Ok(apply_spike(loss, inject))
        }
        OverlapPlan::Shards {
            param_offsets,
            n_params,
        } => {
            let world = comm.world();
            let my_rank = comm.rank();
            let ranges: Vec<(usize, usize)> = (0..world)
                .map(|r| shard_range(*n_params, world, r))
                .collect();
            let mut flat = pipe.take_buf(*n_params);
            let mut remaining: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
            let mut handoffs = Vec::with_capacity(world);
            let mut next_submit = 0usize;
            let loss = {
                let mut sink = |p: usize, g: Tensor| {
                    let off = param_offsets[p];
                    let n = g.numel();
                    flat[off..off + n].copy_from_slice(g.data());
                    if std::mem::take(&mut poison_next_grad) {
                        flat[off] = f32::NAN;
                    }
                    for (s, &(s0, s1)) in ranges.iter().enumerate() {
                        let overlap = (off + n).min(s1).saturating_sub(off.max(s0));
                        if overlap > 0 {
                            remaining[s] -= overlap;
                        }
                    }
                    while next_submit < world && remaining[next_submit] == 0 {
                        let (s0, s1) = ranges[next_submit];
                        let mut buf = pipe.take_buf(s1 - s0);
                        buf.copy_from_slice(&flat[s0..s1]);
                        pipe.submit(Some(next_submit), buf);
                        handoffs.push(Instant::now());
                        next_submit += 1;
                    }
                };
                train_step_with_sink(
                    &st.replica,
                    batch,
                    targets,
                    &cfg.loss,
                    cfg.checkpointing,
                    Some(tracker),
                    &mut sink,
                )
            };
            let t_bwd_end = Instant::now();
            debug_assert_eq!(next_submit, world, "backward left shards unsubmitted");
            tracker.alloc(MemoryCategory::Gradients, flat_bytes);
            let step_result: Result<(), CommError> = (|| {
                let mut reduced = pipe.collect()?;
                let floats: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                pipe.credit_step(&handoffs, &floats, true, t_bwd_end);
                // Only the owner's buffer holds a reduction; hand it to
                // the decomposed ZeRO step (scale + Adam + all-gather).
                let own = std::mem::take(&mut reduced[my_rank]);
                let mut params = st.replica.params().flatten().to_vec();
                {
                    let _span = matgnn_telemetry::span("optimizer");
                    st.zero_adam
                        .as_mut()
                        .expect("zero adam")
                        .step_with_reduced_shard(comm, &mut params, own, lr)?;
                }
                let flat_t = Tensor::from_vec(params.len(), params).expect("flat params");
                st.replica.params_mut().unflatten_from(&flat_t);
                pipe.spare.extend(reduced);
                Ok(())
            })();
            tracker.free(MemoryCategory::Gradients, flat_bytes);
            pipe.spare.push(flat);
            step_result?;
            Ok(apply_spike(loss, inject))
        }
    }
}

/// Runs the remaining epochs/steps until training completes or a fault
/// interrupts it. On `Err`, `st` holds the state reached so far and the
/// caller owns recovery.
#[allow(clippy::too_many_arguments)]
fn run_until_done<M: GnnModel + Clone>(
    st: &mut RankState<M>,
    comm: &mut Communicator,
    cfg: &DdpConfig,
    train: &Dataset,
    normalizer: &Normalizer,
    tracker: &MemoryTracker,
    launch_rank: usize,
    io_retries: &mut usize,
    mut pipeline: Option<&mut OverlapPipeline>,
    mut sup: Option<&mut Supervision>,
    injected: &mut HashSet<u64>,
) -> Result<(), RankExit> {
    while (st.epoch as usize) < cfg.epochs {
        let order = epoch_order(train.len(), cfg.seed, st.epoch);
        let world = comm.world();
        let steps_per_epoch = train.len() / (world * cfg.batch_size);
        assert!(
            steps_per_epoch > 0,
            "training set of {} graphs is smaller than one global batch of {}",
            train.len(),
            world * cfg.batch_size
        );
        // Decode this rank's remaining batches of the epoch ahead of the
        // training loop. The producer replays the exact synchronous fetch
        // — same order slice, same injected-I/O retry (`FaultPlan::check`
        // is pure) — merely earlier in wall time, so any depth is bitwise
        // identical. Kill/delay faults stay on the training thread, where
        // step boundaries are.
        let mut prefetcher = (cfg.prefetch_depth > 0).then(|| {
            let ds = train.clone(); // O(1): samples are Arc-shared
            let norm = *normalizer;
            let order = order.clone();
            let plan = cfg.fault_plan.clone();
            let batch_size = cfg.batch_size;
            let rank = comm.rank();
            let start_step = st.step_in_epoch as usize;
            let gs0 = st.global_step;
            Prefetcher::spawn(cfg.prefetch_depth, move |feed| {
                for step in start_step..steps_per_epoch {
                    let gs = gs0 + (step - start_step) as u64;
                    let mut retries = 0usize;
                    if matches!(plan.check(launch_rank, gs), Some(FaultKind::IoError)) {
                        retries += 1;
                        std::thread::sleep(BACKOFF_BASE);
                    }
                    let base = step * world * batch_size + rank * batch_size;
                    let samples: Vec<&Sample> = order[base..base + batch_size]
                        .iter()
                        .map(|&i| ds.sample(i))
                        .collect();
                    let (batch, targets) = collate(&samples, &norm);
                    if !feed.send((batch, targets, retries)) {
                        return;
                    }
                }
            })
        });
        while (st.step_in_epoch as usize) < steps_per_epoch {
            matgnn_telemetry::set_step(st.global_step);
            // Step progress: restart the hang watchdog's staleness clock.
            if let Some(hb) = comm.heartbeat() {
                hb.beat();
            }
            // Injected faults fire at step boundaries, keyed by launch
            // rank so a plan means the same thing after re-forms.
            let mut inject = None;
            match cfg.fault_plan.check(launch_rank, st.global_step) {
                Some(FaultKind::Kill) => {
                    comm.mark_failed();
                    return Err(RankExit::Killed);
                }
                Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                Some(FaultKind::Hang) => {
                    // Stop making progress without declaring anything:
                    // exactly what a wedged rank looks like from outside.
                    // The rank's own watchdog must notice the stale
                    // heartbeat, poison the group, and cut this rank out;
                    // only then does the thread fold.
                    loop {
                        if comm.is_poisoned() {
                            return Err(RankExit::Hung);
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                // Numerical faults fire once per (rank, step): after the
                // supervisor rolls the run back, the retry executes the
                // same step clean — a transient corruption, which is what
                // makes the recovered trajectory bitwise-comparable to an
                // undisturbed run.
                Some(FaultKind::NanGrad) => {
                    if injected.insert(st.global_step) {
                        inject = Some(Inject::NanGrad);
                    }
                }
                Some(FaultKind::SpikeLoss(factor)) => {
                    if injected.insert(st.global_step) {
                        inject = Some(Inject::Spike(factor));
                    }
                }
                Some(FaultKind::IoError) | None => {} // I/O handled at fetch below
            }

            let data_span = matgnn_telemetry::span("data.load");
            let (batch, targets) = match prefetcher.as_mut() {
                Some(p) => {
                    let (batch, targets, retries) =
                        p.next().expect("prefetch producer ended early");
                    *io_retries += retries;
                    (batch, targets)
                }
                None => {
                    let step = st.step_in_epoch as usize;
                    let base = step * world * cfg.batch_size + comm.rank() * cfg.batch_size;
                    // Shard fetch with bounded-backoff retry of transient
                    // I/O errors; the injector fails the first read
                    // attempt the way a flaky shard-store read would.
                    let mut attempt = 0usize;
                    let samples: Vec<&Sample> = loop {
                        if attempt == 0
                            && matches!(
                                cfg.fault_plan.check(launch_rank, st.global_step),
                                Some(FaultKind::IoError)
                            )
                        {
                            attempt += 1;
                            *io_retries += 1;
                            std::thread::sleep(BACKOFF_BASE);
                            continue;
                        }
                        break order[base..base + cfg.batch_size]
                            .iter()
                            .map(|&i| train.sample(i))
                            .collect();
                    };
                    collate(&samples, normalizer)
                }
            };
            drop(data_span);
            let _step_span = matgnn_telemetry::span("step");
            // Retries after repeated consecutive rollbacks run with the
            // LR backed off (1.0 on the first retry, so a transient
            // anomaly recovers bitwise-identically to a clean run).
            let lr_factor = sup.as_deref().map_or(1.0, |s| s.budget.retry_lr_factor());
            let lr = cfg.schedule.lr(cfg.base_lr, st.global_step as usize) * lr_factor;

            let loss = if let Some(pipe) = pipeline.as_deref_mut() {
                overlapped_step(st, comm, cfg, &batch, &targets, tracker, lr, pipe, inject)?
            } else {
                let mut outcome = train_step(
                    &st.replica,
                    &batch,
                    &targets,
                    &cfg.loss,
                    cfg.checkpointing,
                    Some(tracker),
                );
                if let Some(max_norm) = cfg.grad_clip {
                    let _ = clip_grad_norm(&mut outcome.grads, max_norm);
                }
                let mut flat = flatten_tensors(&outcome.grads);
                if inject == Some(Inject::NanGrad) {
                    // Poison one local gradient value pre-reduction: the
                    // all-reduce spreads the NaN to every replica's
                    // parameters, which is what the supervisor's
                    // post-step finiteness probe is built to catch.
                    flat[0] = f32::NAN;
                }
                let flat_bytes = (flat.len() * 4) as u64;
                tracker.alloc(MemoryCategory::Gradients, flat_bytes);
                let step_result: Result<(), CommError> = (|| {
                    if let Some(zero) = st.zero_adam.as_mut() {
                        let _span = matgnn_telemetry::span("optimizer");
                        let mut params = st.replica.params().flatten().to_vec();
                        zero.step(comm, &mut params, &flat, lr)?;
                        let flat_t = Tensor::from_vec(params.len(), params).expect("flat params");
                        st.replica.params_mut().unflatten_from(&flat_t);
                    } else {
                        match cfg.bucket_size {
                            Some(bucket) if bucket > 0 => {
                                for chunk in flat.chunks_mut(bucket) {
                                    comm.all_reduce_mean(chunk)?;
                                }
                            }
                            _ => comm.all_reduce_mean(&mut flat)?,
                        }
                        let _span = matgnn_telemetry::span("optimizer");
                        let grads = unflatten_like(&flat, &outcome.grads);
                        st.full_adam.as_mut().expect("full adam").step(
                            st.replica.params_mut(),
                            &grads,
                            lr,
                        );
                    }
                    Ok(())
                })();
                tracker.free(MemoryCategory::Gradients, flat_bytes);
                step_result?;
                apply_spike(outcome.loss, inject)
            };

            // Detect → decide: judge the local loss and post-step
            // parameters, then reach a group-wide verdict through a
            // 1-element sum all-reduce (any rank's flag trips every
            // rank), so the rollback decision is collective and
            // deterministic. Runs before the step is committed — an
            // anomalous step must leave no trace in the loss accumulator
            // or the checkpoint stream.
            if let Some(s) = sup.as_deref_mut() {
                let verdict = s.detector.observe(st.global_step, loss);
                let flat_params = st.replica.params().flatten();
                // A spiked step gets exactly one rollback; recurring
                // identically on replay, it is accepted as genuine.
                let spike = verdict == Verdict::Spike && s.spike_rollbacks.insert(st.global_step);
                let anomalous =
                    verdict == Verdict::NonFinite || spike || !params_finite(flat_params.data());
                if anomalous {
                    matgnn_telemetry::health_event(
                        "supervisor.anomaly",
                        &format!(
                            "step {}: verdict {:?}, loss {loss}, params_finite {}",
                            st.global_step,
                            verdict,
                            params_finite(flat_params.data()),
                        ),
                    );
                    matgnn_telemetry::counter_add("supervisor.anomaly", 1);
                }
                let mut flag = [if anomalous { 1.0f32 } else { 0.0 }];
                comm.all_reduce_sum(&mut flag)?;
                if flag[0] > 0.0 {
                    return Err(RankExit::Anomaly);
                }
                s.budget.record_healthy_step();
            }

            st.loss_acc += loss;
            st.loss_count += 1;
            st.step_in_epoch += 1;
            st.global_step += 1;

            if let Some(dir) = &cfg.checkpoint_dir {
                if cfg.checkpoint_every > 0
                    && st.global_step.is_multiple_of(cfg.checkpoint_every as u64)
                {
                    let _span = matgnn_telemetry::span("checkpoint.save");
                    // World-independent optimizer state: gather ZeRO
                    // shards (a collective — every rank participates).
                    let adam_state = if let Some(zero) = st.zero_adam.as_ref() {
                        let (m, v, t) = zero.gather_state(comm)?;
                        AdamState { m, v, t }
                    } else {
                        st.full_adam.as_ref().expect("full adam").export_state()
                    };
                    if comm.rank() == 0 {
                        let ckpt = TrainCheckpoint {
                            epoch: st.epoch,
                            step_in_epoch: st.step_in_epoch,
                            global_step: st.global_step,
                            seed: cfg.seed,
                            loss_acc: st.loss_acc,
                            loss_count: st.loss_count,
                            params: st.replica.params().clone(),
                            adam: adam_state,
                            normalizer: *normalizer,
                        };
                        // Best-effort durability: training proceeds even
                        // if one checkpoint write fails.
                        let _ = ckpt.save(dir.join(TrainCheckpoint::file_name(st.global_step)));
                        if cfg.keep_checkpoints > 0 {
                            // Retention: drop the oldest checkpoints past
                            // the keep depth, but never the supervisor's
                            // rollback anchor.
                            let anchor = sup.as_deref().and_then(|s| s.anchor);
                            prune_checkpoints(dir, cfg.keep_checkpoints, anchor);
                        }
                    }
                    // The checkpoint carries rank 0's loss bookkeeping;
                    // shadow this rank's own accumulator so a rollback
                    // restores it instead.
                    if let Some(s) = sup.as_deref_mut() {
                        s.loss_shadow = Some((st.global_step, st.loss_acc));
                    }
                }
            }
        }
        // Average the epoch loss across ranks.
        let mut l = vec![(st.loss_acc / st.loss_count.max(1) as f64) as f32];
        comm.all_reduce_mean(&mut l)?;
        st.epoch_loss.push(l[0] as f64);
        st.loss_acc = 0.0;
        st.loss_count = 0;
        st.step_in_epoch = 0;
        st.epoch += 1;
    }
    Ok(())
}

/// Trains `model` with DDP semantics across `cfg.world` simulated ranks;
/// on return `model` holds the lowest surviving rank's (synchronized)
/// final parameters.
///
/// Steps per epoch are `len / (world × batch_size)` (remainder dropped so
/// every rank takes the same number of collective calls; recomputed after
/// an elastic re-form).
///
/// # Panics
///
/// Panics if the training set is smaller than one global batch, or if no
/// rank survives to finish training (every rank killed or out of
/// recovery budget).
pub fn train_ddp<M>(
    model: &mut M,
    train: &Dataset,
    normalizer: &Normalizer,
    cfg: &DdpConfig,
) -> DdpReport
where
    M: GnnModel + Clone + Send + Sync,
{
    let world = cfg.world;
    let global_batch = world * cfg.batch_size;
    assert!(
        train.len() / global_batch > 0,
        "training set of {} graphs is smaller than one global batch of {global_batch}",
        train.len()
    );

    let comms = Communicator::create_with_timeout(world, cfg.cost, cfg.comm_timeout);
    let proto = model.clone();
    let n_params = proto.params().n_scalars();
    let param_sizes: Vec<usize> = (0..proto.params().len())
        .map(|p| proto.params().tensor(p).numel())
        .collect();
    let param_sizes = &param_sizes;

    struct RankOutcome<M> {
        stats: RankStats,
        epoch_loss: Vec<f64>,
        final_world: usize,
        steps: u64,
        model: Option<M>,
    }

    let outcomes: Vec<RankOutcome<M>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let proto = &proto;
            let train = &train;
            handles.push(scope.spawn(move || {
                let launch_rank = comm.rank();
                matgnn_telemetry::set_rank(launch_rank);
                let tracker = MemoryTracker::new();
                tracker.alloc(MemoryCategory::Weights, proto.params().bytes());
                let mut st = fresh_state(proto, cfg, launch_rank, cfg.world, n_params, &tracker);
                if cfg.resume {
                    if let Some(dir) = &cfg.checkpoint_dir {
                        if let Some((_, ckpt)) = latest_in(dir) {
                            restore_state(
                                &mut st,
                                &ckpt,
                                cfg,
                                launch_rank,
                                cfg.world,
                                n_params,
                                &tracker,
                            );
                        }
                    }
                }

                let start = Instant::now();
                let mut recoveries = 0usize;
                let mut io_retries = 0usize;
                let mut killed = false;
                let mut survived = true;
                let mut rollbacks = 0usize;
                let mut watchdog_fired = false;
                let mut supervision = cfg.supervise.as_ref().map(Supervision::new);
                let mut injected: HashSet<u64> = HashSet::new();
                // `split_survivors` consumes the communicator, so hold it
                // in an Option and keep the last traffic snapshot in case
                // re-forming fails and the communicator is lost.
                let mut comm = Some(comm);
                // Hang supervision: this rank beats the heartbeat at every
                // step boundary; a dedicated watchdog thread poisons the
                // group if the beat goes stale outside a collective.
                let heartbeat = cfg.progress_deadline.map(|_| Heartbeat::new());
                let mut watchdog = None;
                if let (Some(hb), Some(deadline)) = (&heartbeat, cfg.progress_deadline) {
                    let c = comm.as_mut().expect("live communicator");
                    c.set_heartbeat(Some(Arc::clone(hb)));
                    watchdog = Some(Watchdog::spawn(
                        format!("rank{launch_rank}"),
                        Arc::clone(hb),
                        deadline,
                        c.failure_handle(),
                    ));
                }
                let mut last_stats;
                let mut last_world;
                loop {
                    let c = comm.as_mut().expect("live communicator");
                    // The overlapped-reduction pipeline is bound to the
                    // current group, so it is rebuilt after every elastic
                    // re-form and drained (stats folded back) on every
                    // exit, clean or not.
                    let mut pipeline = OverlapPipeline::create(c, cfg, param_sizes);
                    let res = run_until_done(
                        &mut st,
                        c,
                        cfg,
                        train,
                        normalizer,
                        &tracker,
                        launch_rank,
                        &mut io_retries,
                        pipeline.as_mut(),
                        supervision.as_mut(),
                        &mut injected,
                    );
                    if let Some(p) = pipeline.take() {
                        p.finish(c);
                    }
                    last_stats = c.stats();
                    last_world = c.world();
                    match res {
                        Ok(()) => break,
                        Err(RankExit::Killed) => {
                            killed = true;
                            survived = false;
                            break;
                        }
                        Err(RankExit::Hung) => {
                            // The watchdog already poisoned the group and
                            // flagged this rank dead; peers regroup
                            // without it.
                            killed = true;
                            survived = false;
                            break;
                        }
                        Err(RankExit::Anomaly) => {
                            // Consensus anomaly: every rank reaches this
                            // arm on the same step with the same budget
                            // counts, so the decide/recover path below is
                            // deterministic across the group. The group
                            // itself is healthy — no re-form needed.
                            let s = supervision
                                .as_mut()
                                .expect("anomaly exit only in supervised mode");
                            s.budget.record_anomaly();
                            if s.budget.failed() {
                                matgnn_telemetry::health_event(
                                    "supervisor.failed",
                                    &format!(
                                        "rollback budget exhausted after {} rollbacks; \
                                         abandoning the run",
                                        s.budget.total_rollbacks() - 1
                                    ),
                                );
                                survived = false;
                                break;
                            }
                            rollbacks += 1;
                            let c = comm.as_ref().expect("live communicator");
                            // Roll back: newest durable checkpoint, or the
                            // initial state when durability is off.
                            match cfg.checkpoint_dir.as_ref().and_then(latest_in) {
                                Some((_, ckpt)) => {
                                    s.anchor = Some(ckpt.global_step);
                                    matgnn_telemetry::health_event(
                                        "supervisor.rollback",
                                        &format!(
                                            "restored step {} checkpoint (rollback {} of {})",
                                            ckpt.global_step,
                                            s.budget.total_rollbacks(),
                                            cfg.supervise.as_ref().map_or(0, |sc| sc.max_rollbacks),
                                        ),
                                    );
                                    restore_state(
                                        &mut st,
                                        &ckpt,
                                        cfg,
                                        c.rank(),
                                        c.world(),
                                        n_params,
                                        &tracker,
                                    );
                                    // The checkpoint held rank 0's loss
                                    // accumulator; use this rank's own
                                    // shadow from the same boundary so the
                                    // rank-averaged epoch loss stays
                                    // bitwise-identical to a clean run.
                                    if let Some((step, acc)) = s.loss_shadow {
                                        if step == ckpt.global_step {
                                            st.loss_acc = acc;
                                        }
                                    }
                                }
                                None => {
                                    matgnn_telemetry::health_event(
                                        "supervisor.rollback",
                                        "no checkpoint directory; restarted from initial state",
                                    );
                                    st = fresh_state(
                                        proto,
                                        cfg,
                                        c.rank(),
                                        c.world(),
                                        n_params,
                                        &tracker,
                                    );
                                }
                            }
                            matgnn_telemetry::counter_add("supervisor.rollback", 1);
                            s.budget.record_rolled_back();
                        }
                        Err(RankExit::Comm(_)) => {
                            recoveries += 1;
                            if recoveries > cfg.max_recoveries {
                                survived = false;
                                break;
                            }
                            // Recovery waits on peers (backoff, then the
                            // survivor rendezvous): park the heartbeat so
                            // a survivor's own watchdog cannot mistake
                            // the wait for a stall and poison the group
                            // it is trying to re-form.
                            let _park = heartbeat.clone().map(ParkGuard::new);
                            // Bounded exponential backoff before re-forming.
                            std::thread::sleep(
                                BACKOFF_BASE * (1 << (recoveries - 1).min(4)) as u32,
                            );
                            let old = comm.take().expect("live communicator");
                            match old.split_survivors(cfg.comm_timeout * 4) {
                                Ok(c) => comm = Some(c),
                                Err(_) => {
                                    survived = false;
                                    break;
                                }
                            }
                            let c = comm.as_mut().expect("re-formed communicator");
                            // Re-arm hang supervision for the new group:
                            // the heartbeat carries over, the watchdog is
                            // rebuilt around the new group's failure
                            // handle.
                            if let (Some(hb), Some(deadline)) = (&heartbeat, cfg.progress_deadline)
                            {
                                hb.beat();
                                c.set_heartbeat(Some(Arc::clone(hb)));
                                if let Some(dog) = watchdog.take() {
                                    watchdog_fired |= dog.stop();
                                }
                                watchdog = Some(Watchdog::spawn(
                                    format!("rank{launch_rank}"),
                                    Arc::clone(hb),
                                    deadline,
                                    c.failure_handle(),
                                ));
                            }
                            // Reload the newest durable state; without a
                            // checkpoint dir, training restarts cleanly.
                            match cfg.checkpoint_dir.as_ref().and_then(latest_in) {
                                Some((_, ckpt)) => restore_state(
                                    &mut st,
                                    &ckpt,
                                    cfg,
                                    c.rank(),
                                    c.world(),
                                    n_params,
                                    &tracker,
                                ),
                                None => {
                                    st = fresh_state(
                                        proto,
                                        cfg,
                                        c.rank(),
                                        c.world(),
                                        n_params,
                                        &tracker,
                                    );
                                }
                            }
                        }
                    }
                }
                if let Some(dog) = watchdog.take() {
                    watchdog_fired |= dog.stop();
                }
                if let Some(hb) = &heartbeat {
                    hb.mark_done();
                }
                let wall = start.elapsed();
                if let Some(c) = &comm {
                    last_stats = c.stats();
                    last_world = c.world();
                }
                let steps = st.global_step;
                let epoch_loss = std::mem::take(&mut st.epoch_loss);
                let replica = st.replica.clone();
                drop(st); // frees optimizer-state tracker bytes

                // Fold this rank's end-of-run readings into the shared
                // metrics registry (rank-prefixed: all ranks live in one
                // process) and emit one metrics event per rank.
                matgnn_telemetry::clear_step();
                tracker.publish_telemetry(&format!("ddp.rank{launch_rank}.memory"));
                last_stats.publish_telemetry(&format!("ddp.rank{launch_rank}.comm"));
                matgnn_telemetry::gauge_set(
                    format!("ddp.rank{launch_rank}.wall_us"),
                    wall.as_micros() as f64,
                );
                matgnn_telemetry::counter_set(format!("ddp.rank{launch_rank}.steps"), steps);
                if cfg.supervise.is_some() {
                    matgnn_telemetry::counter_set(
                        format!("supervisor.rank{launch_rank}.rollbacks"),
                        rollbacks as u64,
                    );
                }
                if matgnn_telemetry::enabled() {
                    matgnn_tensor::recycler::publish_telemetry();
                    matgnn_tensor::pool::publish_telemetry();
                    matgnn_tensor::simd::publish_telemetry();
                    matgnn_telemetry::flush_metrics();
                }
                matgnn_telemetry::clear_rank();

                RankOutcome {
                    stats: RankStats {
                        rank: launch_rank,
                        peak_total: tracker.peak_total(),
                        peak: tracker.at_peak(),
                        comm: last_stats,
                        wall,
                        killed,
                        recoveries,
                        io_retries,
                        rollbacks,
                        watchdog_fired,
                    },
                    epoch_loss,
                    final_world: last_world,
                    steps,
                    model: survived.then_some(replica),
                }
            }));
        }
        let mut outs: Vec<RankOutcome<M>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        outs.sort_by_key(|o| o.stats.rank);
        outs
    });

    let survivor = outcomes
        .iter()
        .find(|o| o.model.is_some())
        .expect("no surviving rank finished training");
    let epoch_loss = survivor.epoch_loss.clone();
    let steps = survivor.steps as usize;
    let final_world = survivor.final_world;
    let wall = outcomes
        .iter()
        .map(|o| o.stats.wall)
        .max()
        .unwrap_or_default();
    let recoveries = outcomes
        .iter()
        .map(|o| o.stats.recoveries)
        .max()
        .unwrap_or(0);
    let failed_ranks: Vec<usize> = outcomes
        .iter()
        .filter(|o| o.stats.killed)
        .map(|o| o.stats.rank)
        .collect();
    let rollbacks = outcomes
        .iter()
        .map(|o| o.stats.rollbacks)
        .max()
        .unwrap_or(0);
    let mut ranks = Vec::with_capacity(world);
    let mut final_model = None;
    for o in outcomes {
        if final_model.is_none() {
            if let Some(m) = o.model {
                final_model = Some(m);
            }
        }
        ranks.push(o.stats);
    }
    *model = final_model.expect("no surviving rank finished training");

    let report = DdpReport {
        epoch_loss,
        ranks,
        steps,
        wall,
        recoveries,
        final_world,
        failed_ranks,
        rollbacks,
    };
    ledger_append(model, train, world, &report);
    report
}

/// Appends the finished run's scaling coordinates to the ledger named
/// by `MATGNN_LEDGER`, if set — one env lookup at run end, nothing on
/// the training path.
fn ledger_append<M: GnnModel>(model: &M, train: &Dataset, world: usize, report: &DdpReport) {
    use matgnn_telemetry::ledger;
    if !std::env::var(ledger::ENV_VAR).is_ok_and(|v| !v.is_empty()) {
        return;
    }
    let params = model.params().n_scalars() as u64;
    let atoms_per_epoch: u64 = train.samples().iter().map(|s| s.n_nodes() as u64).sum();
    let atoms_seen = atoms_per_epoch * report.epoch_loss.len() as u64;
    let mut rec = ledger::RunRecord::new("ddp", params, atoms_seen, world);
    rec.steps = report.steps as u64;
    rec.wall_s = report.wall.as_secs_f64();
    rec.loss = report.epoch_loss.last().copied().unwrap_or(f64::NAN);
    rec.curve = report
        .epoch_loss
        .iter()
        .enumerate()
        .map(|(i, l)| {
            (
                ledger::flop_estimate(params, atoms_per_epoch * (i as u64 + 1)),
                *l,
            )
        })
        .collect();
    ledger::append_from_env(&rec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::GeneratorConfig;
    use matgnn_model::{Egnn, EgnnConfig};

    fn data() -> (Dataset, Normalizer) {
        let ds = Dataset::generate_aggregate(32, 41, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        (ds, norm)
    }

    #[test]
    fn flatten_roundtrip() {
        let ts = vec![Tensor::ones((2, 3)), Tensor::zeros(4usize)];
        let flat = flatten_tensors(&ts);
        assert_eq!(flat.len(), 10);
        let back = unflatten_like(&flat, &ts);
        assert!(back[0].allclose(&ts[0], 0.0));
        assert!(back[1].allclose(&ts[1], 0.0));
    }

    #[test]
    fn ddp_replicas_stay_synchronized_and_loss_decreases() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
        let cfg = DdpConfig {
            world: 2,
            epochs: 8,
            batch_size: 4,
            ..Default::default()
        };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        assert_eq!(report.epoch_loss.len(), 8);
        let tail = (report.epoch_loss[6] + report.epoch_loss[7]) / 2.0;
        assert!(
            tail < report.epoch_loss[0],
            "DDP loss did not decrease: {:?}",
            report.epoch_loss
        );
        assert_eq!(report.ranks.len(), 2);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.final_world, 2);
        assert!(report.failed_ranks.is_empty());
    }

    #[test]
    fn zero_matches_full_adam_exactly() {
        // ZeRO-1 is an exact refactoring of Adam: same collective-sum
        // order, same update — final parameters must agree to f32 noise.
        let (ds, norm) = data();
        let run = |zero: bool| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(5));
            let cfg = DdpConfig {
                world: 2,
                epochs: 2,
                batch_size: 4,
                zero,
                ..Default::default()
            };
            let _ = train_ddp(&mut model, &ds, &norm, &cfg);
            model.params().flatten()
        };
        let full = run(false);
        let sharded = run(true);
        assert!(
            full.allclose(&sharded, 1e-5),
            "ZeRO diverged from replicated Adam (max |Δ| = {})",
            full.sub(&sharded).max_abs()
        );
    }

    #[test]
    fn zero_shards_optimizer_state() {
        let (ds, norm) = data();
        let peak_opt = |zero: bool| {
            let mut model = Egnn::new(EgnnConfig::new(16, 3));
            let cfg = DdpConfig {
                world: 4,
                epochs: 1,
                batch_size: 2,
                zero,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            report.ranks[0].peak.get(MemoryCategory::OptimizerState)
        };
        let full = peak_opt(false);
        let sharded = peak_opt(true);
        assert!(
            sharded * 3 <= full,
            "ZeRO state not sharded: {sharded} vs {full}"
        );
    }

    #[test]
    fn comm_traffic_recorded() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig {
            world: 2,
            epochs: 1,
            batch_size: 4,
            ..Default::default()
        };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        for r in &report.ranks {
            assert!(r.comm.bytes_moved > 0);
            assert!(r.comm.modeled_seconds > 0.0);
        }
        assert!(report.mean_step_wall() > Duration::ZERO);
    }

    #[test]
    fn world_one_runs() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig {
            world: 1,
            epochs: 1,
            batch_size: 4,
            ..Default::default()
        };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        assert_eq!(report.ranks.len(), 1);
        assert!(report.epoch_loss[0].is_finite());
    }

    #[test]
    fn bucketed_all_reduce_identical_to_flat() {
        let (ds, norm) = data();
        let run = |bucket_size: Option<usize>| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(7));
            let cfg = DdpConfig {
                world: 2,
                epochs: 2,
                batch_size: 4,
                bucket_size,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report.ranks[0].comm)
        };
        let (flat_params, flat_comm) = run(None);
        let (bucketed_params, bucketed_comm) = run(Some(500));
        // Same arithmetic, same order within each element → identical.
        assert!(
            flat_params.allclose(&bucketed_params, 0.0),
            "bucketing changed results"
        );
        // Bucketing means more collectives for the same bytes.
        assert!(bucketed_comm.collectives > flat_comm.collectives);
        assert!(bucketed_comm.modeled_seconds > flat_comm.modeled_seconds);
    }

    #[test]
    fn bucket_plan_covers_every_param_once() {
        let sizes = [100, 7, 8192, 1, 40, 40];
        let (buckets, locate) = plan_buckets(&sizes, 128);
        let mut seen = vec![false; sizes.len()];
        for (b, spec) in buckets.iter().enumerate() {
            let mut floats = 0;
            for &(p, off) in &spec.params {
                assert!(!seen[p], "param {p} planned twice");
                seen[p] = true;
                assert_eq!(locate[p], (b, off));
                floats += sizes[p];
            }
            assert_eq!(floats, spec.floats);
        }
        assert!(seen.iter().all(|&s| s), "params missing from plan");
        // Reverse walk: the first bucket holds the last params.
        assert_eq!(buckets[0].params[0].0, sizes.len() - 1);
        // An oversized param gets a bucket of its own.
        assert!(buckets
            .iter()
            .any(|b| b.floats == 8192 && b.params.len() == 1));
    }

    #[test]
    fn overlap_is_bitwise_identical_to_sync() {
        // Overlap moves collectives in wall time, never in arithmetic:
        // full-Adam and ZeRO variants must match the unoverlapped run
        // bit for bit, and the overlapped run must record hidden comm.
        let (ds, norm) = data();
        let run = |overlap: bool, zero: bool| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(13));
            let cfg = DdpConfig {
                world: 4,
                epochs: 2,
                batch_size: 2,
                grad_clip: None,
                bucket_size: Some(500),
                overlap_comm: overlap,
                zero,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report)
        };
        for zero in [false, true] {
            let (sync_params, sync_report) = run(false, zero);
            let (ov_params, ov_report) = run(true, zero);
            assert!(
                sync_params.allclose(&ov_params, 0.0),
                "overlap changed results (zero={zero})"
            );
            assert_eq!(sync_report.epoch_loss, ov_report.epoch_loss);
            let ov = &ov_report.ranks[0].comm;
            assert!(
                ov.overlapped_seconds > 0.0,
                "no communication was hidden (zero={zero})"
            );
            assert!(ov.overlapped_seconds <= ov.modeled_seconds);
            assert!(ov.exposed_seconds() < ov.modeled_seconds);
            assert_eq!(sync_report.ranks[0].comm.overlapped_seconds, 0.0);
            // Memory accounting is unchanged: same logical allocations at
            // the same points in the step.
            assert_eq!(
                sync_report.ranks[0].peak_total, ov_report.ranks[0].peak_total,
                "overlap changed the tracked peak (zero={zero})"
            );
        }
    }

    #[test]
    fn prefetch_is_bitwise_identical_to_sync_fetch() {
        let (ds, norm) = data();
        let run = |depth: usize| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(17));
            let cfg = DdpConfig {
                world: 2,
                epochs: 2,
                batch_size: 4,
                prefetch_depth: depth,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report.epoch_loss)
        };
        let (sync_params, sync_loss) = run(0);
        for depth in [1, 3] {
            let (p, l) = run(depth);
            assert!(
                sync_params.allclose(&p, 0.0),
                "prefetch depth {depth} changed results"
            );
            assert_eq!(sync_loss, l);
        }
    }

    #[test]
    fn injected_io_error_is_retried_inside_the_prefetcher() {
        let (ds, norm) = data();
        let run = |plan: FaultPlan| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(9));
            let cfg = DdpConfig {
                world: 2,
                epochs: 1,
                batch_size: 4,
                prefetch_depth: 2,
                fault_plan: plan,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report)
        };
        let (clean, _) = run(FaultPlan::none());
        let (faulted, report) = run(FaultPlan::parse("io@rank1,step1").unwrap());
        assert!(clean.allclose(&faulted, 0.0), "io retry changed results");
        assert_eq!(report.ranks[1].io_retries, 1);
        assert_eq!(report.recoveries, 0);
    }

    #[test]
    #[should_panic(expected = "smaller than one global batch")]
    fn tiny_dataset_panics() {
        let (ds, norm) = data();
        let small = ds.subsample_tb(0.1, 0); // few samples
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig {
            world: 4,
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        };
        let _ = train_ddp(&mut model, &small, &norm, &cfg);
    }

    #[test]
    fn injected_io_error_is_retried_transparently() {
        let (ds, norm) = data();
        let run = |plan: FaultPlan| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(9));
            let cfg = DdpConfig {
                world: 2,
                epochs: 1,
                batch_size: 4,
                fault_plan: plan,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report)
        };
        let (clean, _) = run(FaultPlan::none());
        let (faulted, report) = run(FaultPlan::parse("io@rank1,step1").unwrap());
        // A retried transient fetch error must not change the math.
        assert!(clean.allclose(&faulted, 0.0), "io retry changed results");
        assert_eq!(report.ranks[1].io_retries, 1);
        assert_eq!(report.recoveries, 0);
    }

    #[test]
    fn straggler_delay_within_timeout_is_harmless() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(11));
        let cfg = DdpConfig {
            world: 2,
            epochs: 1,
            batch_size: 4,
            fault_plan: FaultPlan::parse("delay@rank1,step1,30ms").unwrap(),
            ..Default::default()
        };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.final_world, 2);
    }
}
