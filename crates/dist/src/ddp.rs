//! Distributed data-parallel (DDP) training over simulated ranks.
//!
//! Each rank (an OS thread standing in for one GPU) holds a full model
//! replica, processes its own slice of every global batch, and the ranks
//! all-reduce gradient means before stepping identical optimizers — the
//! PyTorch-DDP semantics HydraGNN uses. With [`DdpConfig::zero`] the full
//! Adam replica is replaced by a [`ZeroAdam`] shard (reduce-scatter +
//! all-gather), and [`DdpConfig::checkpointing`] switches the step to the
//! recompute path — together, the paper's Sec. V configuration matrix.

use std::time::{Duration, Instant};

use matgnn_data::{collate, Dataset, Normalizer, Sample};
use matgnn_model::GnnModel;
use matgnn_tensor::{MemoryBreakdown, MemoryCategory, MemoryTracker, Tensor};
use matgnn_train::{
    clip_grad_norm, train_step, Adam, AdamHyper, LossConfig, LrSchedule, Optimizer,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{CommStats, Communicator, CostModel, ZeroAdam};

/// Configuration of a DDP run.
#[derive(Debug, Clone, Copy)]
pub struct DdpConfig {
    /// Number of simulated ranks ("GPUs").
    pub world: usize,
    /// Passes over the training set.
    pub epochs: usize,
    /// Graphs per rank per step (global batch = `world × batch_size`).
    pub batch_size: usize,
    /// Base learning rate.
    pub base_lr: f32,
    /// LR schedule.
    pub schedule: LrSchedule,
    /// Per-rank gradient clipping before reduction (`None` disables).
    pub grad_clip: Option<f32>,
    /// Training objective.
    pub loss: LossConfig,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Shuffle seed.
    pub seed: u64,
    /// Activation checkpointing on each rank.
    pub checkpointing: bool,
    /// ZeRO-1 optimizer-state sharding instead of replicated Adam.
    pub zero: bool,
    /// Interconnect cost model for modeled communication time.
    pub cost: CostModel,
    /// Gradient bucketing: all-reduce in chunks of at most this many
    /// floats (`None` = one collective for the whole gradient). Real DDP
    /// buckets gradients to overlap communication with the tail of the
    /// backward pass; here bucketing trades per-collective latency against
    /// staging-buffer size, and the result is bit-identical either way
    /// (tested).
    pub bucket_size: Option<usize>,
}

impl Default for DdpConfig {
    fn default() -> Self {
        DdpConfig {
            world: 4,
            epochs: 1,
            batch_size: 4,
            base_lr: 3e-3,
            schedule: LrSchedule::Constant,
            grad_clip: Some(5.0),
            loss: LossConfig::default(),
            adam: AdamHyper::default(),
            seed: 0,
            checkpointing: false,
            zero: false,
            cost: CostModel::default(),
            bucket_size: None,
        }
    }
}

/// Per-rank outcome of a DDP run.
#[derive(Debug, Clone)]
pub struct RankStats {
    /// Rank index.
    pub rank: usize,
    /// Peak tracked bytes on this rank.
    pub peak_total: u64,
    /// Breakdown at the peak instant.
    pub peak: MemoryBreakdown,
    /// Collective traffic.
    pub comm: CommStats,
    /// Rank wall time.
    pub wall: Duration,
}

/// Outcome of [`train_ddp`].
#[derive(Debug, Clone)]
pub struct DdpReport {
    /// Mean training loss per epoch (averaged over ranks and steps).
    pub epoch_loss: Vec<f64>,
    /// Per-rank statistics.
    pub ranks: Vec<RankStats>,
    /// Optimization steps taken (per rank).
    pub steps: usize,
    /// Longest rank wall time.
    pub wall: Duration,
}

impl DdpReport {
    /// Mean wall time per optimization step.
    pub fn mean_step_wall(&self) -> Duration {
        if self.steps == 0 {
            Duration::ZERO
        } else {
            self.wall / self.steps as u32
        }
    }
}

/// Flattens aligned gradient tensors into one vector (collective layout).
pub fn flatten_tensors(tensors: &[Tensor]) -> Vec<f32> {
    let n: usize = tensors.iter().map(|t| t.numel()).sum();
    let mut out = Vec::with_capacity(n);
    for t in tensors {
        out.extend_from_slice(t.data());
    }
    out
}

/// Splits a flat vector back into tensors shaped like `template`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn unflatten_like(flat: &[f32], template: &[Tensor]) -> Vec<Tensor> {
    let total: usize = template.iter().map(|t| t.numel()).sum();
    assert_eq!(flat.len(), total, "flat buffer length mismatch");
    let mut out = Vec::with_capacity(template.len());
    let mut offset = 0;
    for t in template {
        let n = t.numel();
        out.push(
            Tensor::from_vec(t.shape().clone(), flat[offset..offset + n].to_vec())
                .expect("unflatten shape"),
        );
        offset += n;
    }
    out
}

/// Trains `model` with DDP semantics across `cfg.world` simulated ranks;
/// on return `model` holds rank 0's (synchronized) final parameters.
///
/// Steps per epoch are `len / (world × batch_size)` (remainder dropped so
/// every rank takes the same number of collective calls).
///
/// # Panics
///
/// Panics if the training set is smaller than one global batch.
pub fn train_ddp<M>(
    model: &mut M,
    train: &Dataset,
    normalizer: &Normalizer,
    cfg: &DdpConfig,
) -> DdpReport
where
    M: GnnModel + Clone + Send + Sync,
{
    let world = cfg.world;
    let global_batch = world * cfg.batch_size;
    let steps_per_epoch = train.len() / global_batch;
    assert!(
        steps_per_epoch > 0,
        "training set of {} graphs is smaller than one global batch of {global_batch}",
        train.len()
    );

    let comms = Communicator::create(world, cfg.cost);
    let proto = model.clone();
    let n_params = proto.params().n_scalars();

    struct RankOutcome<M> {
        stats: RankStats,
        epoch_loss: Vec<f64>,
        model: Option<M>,
    }

    let outcomes: Vec<RankOutcome<M>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for mut comm in comms {
            let mut replica = proto.clone();
            let train = &train;
            handles.push(scope.spawn(move || {
                let rank = comm.rank();
                let tracker = MemoryTracker::new();
                tracker.alloc(MemoryCategory::Weights, replica.params().bytes());
                let mut full_adam = (!cfg.zero).then(|| {
                    Adam::new(replica.params(), cfg.adam, Some(tracker.clone()))
                });
                let mut zero_adam = cfg.zero.then(|| {
                    ZeroAdam::new(n_params, rank, cfg.world, cfg.adam, Some(tracker.clone()))
                });

                let start = Instant::now();
                let mut epoch_loss = Vec::with_capacity(cfg.epochs);
                let mut step_idx = 0usize;
                for epoch in 0..cfg.epochs {
                    // Identical shuffled order on every rank.
                    let mut order: Vec<usize> = (0..train.len()).collect();
                    let shuffle = cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9);
                    order.shuffle(&mut StdRng::seed_from_u64(shuffle));
                    let mut loss_acc = 0.0f64;

                    for step in 0..steps_per_epoch {
                        let base = step * cfg.world * cfg.batch_size + rank * cfg.batch_size;
                        let samples: Vec<&Sample> = order[base..base + cfg.batch_size]
                            .iter()
                            .map(|&i| train.sample(i))
                            .collect();
                        let (batch, targets) = collate(&samples, normalizer);
                        let mut outcome = train_step(
                            &replica,
                            &batch,
                            &targets,
                            &cfg.loss,
                            cfg.checkpointing,
                            Some(&tracker),
                        );
                        if let Some(max_norm) = cfg.grad_clip {
                            let _ = clip_grad_norm(&mut outcome.grads, max_norm);
                        }
                        loss_acc += outcome.loss;
                        let lr = cfg.schedule.lr(cfg.base_lr, step_idx);

                        let mut flat = flatten_tensors(&outcome.grads);
                        let flat_bytes = (flat.len() * 4) as u64;
                        tracker.alloc(MemoryCategory::Gradients, flat_bytes);
                        if let Some(zero) = zero_adam.as_mut() {
                            let mut params = replica.params().flatten().to_vec();
                            zero.step(&mut comm, &mut params, &flat, lr);
                            let flat_t =
                                Tensor::from_vec(params.len(), params).expect("flat params");
                            replica.params_mut().unflatten_from(&flat_t);
                        } else {
                            match cfg.bucket_size {
                                Some(bucket) if bucket > 0 => {
                                    for chunk in flat.chunks_mut(bucket) {
                                        comm.all_reduce_mean(chunk);
                                    }
                                }
                                _ => comm.all_reduce_mean(&mut flat),
                            }
                            let grads = unflatten_like(&flat, &outcome.grads);
                            full_adam.as_mut().expect("full adam").step(
                                replica.params_mut(),
                                &grads,
                                lr,
                            );
                        }
                        tracker.free(MemoryCategory::Gradients, flat_bytes);
                        step_idx += 1;
                    }
                    // Average the epoch loss across ranks.
                    let mut l = vec![(loss_acc / steps_per_epoch as f64) as f32];
                    comm.all_reduce_mean(&mut l);
                    epoch_loss.push(l[0] as f64);
                }
                let wall = start.elapsed();
                drop(full_adam);
                drop(zero_adam);

                RankOutcome {
                    stats: RankStats {
                        rank,
                        peak_total: tracker.peak_total(),
                        peak: tracker.at_peak(),
                        comm: comm.stats(),
                        wall,
                    },
                    epoch_loss,
                    model: (rank == 0).then_some(replica),
                }
            }));
        }
        let mut outs: Vec<RankOutcome<M>> =
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect();
        outs.sort_by_key(|o| o.stats.rank);
        outs
    });

    let epoch_loss = outcomes[0].epoch_loss.clone();
    let wall = outcomes.iter().map(|o| o.stats.wall).max().unwrap_or_default();
    let mut ranks = Vec::with_capacity(world);
    let mut final_model = None;
    for o in outcomes {
        if let Some(m) = o.model {
            final_model = Some(m);
        }
        ranks.push(o.stats);
    }
    *model = final_model.expect("rank 0 model");

    DdpReport { epoch_loss, ranks, steps: cfg.epochs * steps_per_epoch, wall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::GeneratorConfig;
    use matgnn_model::{Egnn, EgnnConfig};

    fn data() -> (Dataset, Normalizer) {
        let ds = Dataset::generate_aggregate(32, 41, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        (ds, norm)
    }

    #[test]
    fn flatten_roundtrip() {
        let ts = vec![Tensor::ones((2, 3)), Tensor::zeros(4usize)];
        let flat = flatten_tensors(&ts);
        assert_eq!(flat.len(), 10);
        let back = unflatten_like(&flat, &ts);
        assert!(back[0].allclose(&ts[0], 0.0));
        assert!(back[1].allclose(&ts[1], 0.0));
    }

    #[test]
    fn ddp_replicas_stay_synchronized_and_loss_decreases() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
        let cfg = DdpConfig { world: 2, epochs: 8, batch_size: 4, ..Default::default() };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        assert_eq!(report.epoch_loss.len(), 8);
        let tail = (report.epoch_loss[6] + report.epoch_loss[7]) / 2.0;
        assert!(
            tail < report.epoch_loss[0],
            "DDP loss did not decrease: {:?}",
            report.epoch_loss
        );
        assert_eq!(report.ranks.len(), 2);
    }

    #[test]
    fn zero_matches_full_adam_exactly() {
        // ZeRO-1 is an exact refactoring of Adam: same collective-sum
        // order, same update — final parameters must agree to f32 noise.
        let (ds, norm) = data();
        let run = |zero: bool| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(5));
            let cfg = DdpConfig {
                world: 2,
                epochs: 2,
                batch_size: 4,
                zero,
                ..Default::default()
            };
            let _ = train_ddp(&mut model, &ds, &norm, &cfg);
            model.params().flatten()
        };
        let full = run(false);
        let sharded = run(true);
        assert!(
            full.allclose(&sharded, 1e-5),
            "ZeRO diverged from replicated Adam (max |Δ| = {})",
            full.sub(&sharded).max_abs()
        );
    }

    #[test]
    fn zero_shards_optimizer_state() {
        let (ds, norm) = data();
        let peak_opt = |zero: bool| {
            let mut model = Egnn::new(EgnnConfig::new(16, 3));
            let cfg = DdpConfig {
                world: 4,
                epochs: 1,
                batch_size: 2,
                zero,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            report.ranks[0].peak.get(MemoryCategory::OptimizerState)
        };
        let full = peak_opt(false);
        let sharded = peak_opt(true);
        assert!(
            sharded * 3 <= full,
            "ZeRO state not sharded: {sharded} vs {full}"
        );
    }

    #[test]
    fn comm_traffic_recorded() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig { world: 2, epochs: 1, batch_size: 4, ..Default::default() };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        for r in &report.ranks {
            assert!(r.comm.bytes_moved > 0);
            assert!(r.comm.modeled_seconds > 0.0);
        }
        assert!(report.mean_step_wall() > Duration::ZERO);
    }

    #[test]
    fn world_one_runs() {
        let (ds, norm) = data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig { world: 1, epochs: 1, batch_size: 4, ..Default::default() };
        let report = train_ddp(&mut model, &ds, &norm, &cfg);
        assert_eq!(report.ranks.len(), 1);
        assert!(report.epoch_loss[0].is_finite());
    }

    #[test]
    fn bucketed_all_reduce_identical_to_flat() {
        let (ds, norm) = data();
        let run = |bucket_size: Option<usize>| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(7));
            let cfg = DdpConfig {
                world: 2,
                epochs: 2,
                batch_size: 4,
                bucket_size,
                ..Default::default()
            };
            let report = train_ddp(&mut model, &ds, &norm, &cfg);
            (model.params().flatten(), report.ranks[0].comm)
        };
        let (flat_params, flat_comm) = run(None);
        let (bucketed_params, bucketed_comm) = run(Some(500));
        // Same arithmetic, same order within each element → identical.
        assert!(flat_params.allclose(&bucketed_params, 0.0), "bucketing changed results");
        // Bucketing means more collectives for the same bytes.
        assert!(bucketed_comm.collectives > flat_comm.collectives);
        assert!(bucketed_comm.modeled_seconds > flat_comm.modeled_seconds);
    }

    #[test]
    #[should_panic(expected = "smaller than one global batch")]
    fn tiny_dataset_panics() {
        let (ds, norm) = data();
        let small = ds.subsample_tb(0.1, 0); // few samples
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = DdpConfig { world: 4, epochs: 1, batch_size: 8, ..Default::default() };
        let _ = train_ddp(&mut model, &small, &norm, &cfg);
    }
}
