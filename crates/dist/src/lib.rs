//! # matgnn-dist
//!
//! The simulated multi-GPU runtime of the `matgnn` reproduction. The paper
//! trains on Perlmutter nodes (4×A100 over NVLink) with PyTorch DDP plus
//! DeepSpeed's ZeRO; here each "GPU" is an OS thread, the collectives are
//! real (staged through shared memory with NCCL semantics and a ring-cost
//! model for the interconnect), and both **DDP** gradient averaging and
//! **ZeRO-1** optimizer-state sharding are actually implemented — ZeRO is
//! tested to produce bit-compatible parameters with replicated Adam.
//!
//! The runtime is fault-tolerant: every collective is timeout-bounded and
//! returns [`Result`] (see [`CommError`]), a deterministic [`FaultPlan`]
//! injects rank kills / stragglers / I/O errors, and [`train_ddp`]
//! recovers from failures by re-forming a smaller group
//! ([`Communicator::split_survivors`]) and resuming from the newest
//! checkpoint.
//!
//! ```
//! use matgnn_dist::{shard_range, Communicator, CostModel};
//!
//! // Rank 1 of 4 owns the second quarter of a 100-element vector.
//! assert_eq!(shard_range(100, 4, 1), (25, 50));
//! let comms = Communicator::create(1, CostModel::default());
//! assert_eq!(comms[0].world(), 1);
//! ```

#![warn(missing_docs)]

mod collective;
mod ddp;
mod fault;
mod graphpar_train;
mod halo;
mod supervisor;
mod table2;
mod zero;

pub use collective::{
    shard_range, BucketComm, CommError, CommStats, Communicator, CostModel, FailureHandle,
    DEFAULT_COMM_TIMEOUT,
};
pub use ddp::{flatten_tensors, train_ddp, unflatten_like, DdpConfig, DdpReport, RankStats};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanParseError, FaultSite};
pub use graphpar_train::{synthetic_slab, train_graphpar, GraphParConfig, GraphParReport};
pub use halo::DistHalo;
pub use supervisor::{Heartbeat, Watchdog};
pub use table2::{format_table2, run_memory_settings, MemorySetting, SettingProfile};
pub use zero::ZeroAdam;
