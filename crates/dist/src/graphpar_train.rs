//! The graph-parallel training driver: one structure, spatially
//! partitioned, trained by `world` ranks that exchange ghost-atom halos
//! between layers ([`DistHalo`]) instead of replicating the graph.
//!
//! Because the partition plan fixes `n_parts` **virtual parts**
//! independent of the rank count and every cross-part reduction runs in
//! canonical ascending part order, the whole trajectory — losses,
//! gradients, parameters — is bitwise identical at any world size (see
//! `crates/model/src/graphpar.rs`). That invariance is what makes
//! elastic recovery exact here: when a rank dies mid-exchange, the
//! survivors regroup with [`Communicator::split_survivors`], re-derive
//! their part ranges from the *same* plan, redo the interrupted step,
//! and continue producing the very bits an uninterrupted run would.
//!
//! Optimizers: a replicated Adam (every rank holds full moments — the
//! default), or ZeRO sharding ([`ZeroAdam`]). Graph-parallel gradients
//! arrive already reduced, so the ZeRO path skips the reduce-scatter
//! and feeds each rank's shard directly; the internal `1/world` mean is
//! cancelled by pre-scaling, which is exact for power-of-two worlds —
//! the regime the bitwise gates in `exp_graphpar` cover.

use std::thread;
use std::time::Duration;

use matgnn_graph::{parts_for_rank, AtomicStructure, Element, PartitionPlan};
use matgnn_model::{
    graphpar_step, local_batches, Egnn, EgnnConfig, GnnModel, GraphParLoss, HaloError,
};
use matgnn_tensor::Tensor;
use matgnn_train::{adam_update, AdamHyper};

use crate::collective::{CommStats, Communicator, CostModel};
use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::halo::DistHalo;
use crate::zero::ZeroAdam;

/// Configuration of a graph-parallel training run.
#[derive(Debug, Clone)]
pub struct GraphParConfig {
    /// Number of simulated ranks.
    pub world: usize,
    /// Number of virtual partitions (fixed per run; independent of
    /// `world`, which is what keeps the trajectory rank-count-invariant).
    pub n_parts: usize,
    /// Atoms in the synthetic slab structure.
    pub n_atoms: usize,
    /// Neighbor cutoff radius (also the halo depth).
    pub cutoff: f64,
    /// EGNN hidden width.
    pub hidden_dim: usize,
    /// EGNN message-passing layers.
    pub n_layers: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Adam hyper-parameters.
    pub adam: AdamHyper,
    /// Shard optimizer state with ZeRO instead of replicating it.
    pub zero: bool,
    /// Credit modeled halo-communication time as overlapped with
    /// compute (accounting only — the arithmetic is unchanged, so
    /// results are bitwise identical on/off).
    pub overlap_comm: bool,
    /// Loss definition.
    pub loss: GraphParLoss,
    /// Structure/model seed.
    pub seed: u64,
    /// Per-collective rendezvous timeout.
    pub comm_timeout: Duration,
    /// Deterministic fault schedule (halo-site events fire inside the
    /// step's first ghost exchange).
    pub fault_plan: FaultPlan,
    /// Elastic recoveries allowed before a rank gives up.
    pub max_recoveries: usize,
    /// Interconnect cost model.
    pub cost: CostModel,
}

impl Default for GraphParConfig {
    fn default() -> Self {
        GraphParConfig {
            world: 2,
            n_parts: 4,
            n_atoms: 32,
            cutoff: 2.5,
            hidden_dim: 16,
            n_layers: 2,
            steps: 3,
            lr: 1e-3,
            adam: AdamHyper::default(),
            zero: false,
            overlap_comm: false,
            loss: GraphParLoss::default(),
            seed: 0,
            comm_timeout: Duration::from_secs(10),
            fault_plan: FaultPlan::none(),
            max_recoveries: 3,
            cost: CostModel::default(),
        }
    }
}

/// Outcome of a graph-parallel run, reported by the lowest-ranked
/// survivor (all survivors hold bitwise-identical replicas).
#[derive(Debug, Clone)]
pub struct GraphParReport {
    /// Loss at every completed optimizer step.
    pub losses: Vec<f32>,
    /// Final flattened parameters.
    pub final_params: Vec<f32>,
    /// World size at the end of the run (shrinks across kill recoveries).
    pub final_world: usize,
    /// Elastic recoveries performed.
    pub recoveries: usize,
    /// Atoms owned by the reporting rank at the end of the run.
    pub owned_atoms: usize,
    /// Ghost atoms in the reporting rank's halos at the end of the run.
    pub ghost_atoms: usize,
    /// Logical halo payload moved per step by the reporting rank
    /// (owner rows copied into ghost slots, summed over layers).
    pub halo_bytes_per_step: u64,
    /// The reporting rank's communicator statistics.
    pub stats: CommStats,
}

/// Deterministic synthetic slab: atoms on a perturbed lattice elongated
/// along x, four per station — the canonical input of the graph-parallel
/// benchmarks (long axis → clean slab partitions).
pub fn synthetic_slab(n_atoms: usize, seed: u64) -> AtomicStructure {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = [Element::H, Element::C, Element::N, Element::O];
    let species = (0..n_atoms)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect();
    let positions = (0..n_atoms)
        .map(|i| {
            [
                (i / 4) as f64 * 1.1 + rng.gen_range(-0.25..0.25),
                ((i % 4) / 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                (i % 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
            ]
        })
        .collect();
    AtomicStructure::new(species, positions).expect("species/positions agree")
}

enum RankOutcome {
    /// Completed all steps.
    Done(GraphParReport),
    /// Left the run early (hung rank excused by the watchdog path).
    Excused,
    /// Unrecoverable failure.
    Failed(String),
}

/// Runs graph-parallel training across `cfg.world` simulated ranks and
/// returns the lowest surviving rank's report.
///
/// # Panics
///
/// Panics if every rank fails (e.g. the fault plan kills rank 0, which
/// the driver does not support, or recoveries exceed the budget).
pub fn train_graphpar(cfg: &GraphParConfig) -> GraphParReport {
    let start = std::time::Instant::now();
    let comms = Communicator::create_with_timeout(cfg.world, cfg.cost, cfg.comm_timeout);
    let outcomes: Vec<Option<RankOutcome>> = thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let cfg = cfg.clone();
                scope.spawn(move || run_rank(&cfg, comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().ok()) // a killed rank's panic is expected
            .collect()
    });
    let mut excused = 0;
    let mut report = None;
    for outcome in outcomes.into_iter().flatten() {
        match outcome {
            RankOutcome::Done(r) => {
                if report.is_none() {
                    report = Some(r);
                }
            }
            RankOutcome::Excused => excused += 1,
            RankOutcome::Failed(msg) => panic!("graph-parallel rank failed: {msg}"),
        }
    }
    let _ = excused;
    let report = report.expect("at least one rank must survive the fault plan");
    ledger_append(cfg, &report, start.elapsed());
    report
}

/// Appends the finished run's scaling coordinates to the ledger named
/// by `MATGNN_LEDGER`, if set — one env lookup at run end, nothing on
/// the training path. Atoms seen = the whole slab once per step (the
/// partitions jointly cover it each step).
fn ledger_append(cfg: &GraphParConfig, report: &GraphParReport, wall: Duration) {
    use matgnn_telemetry::ledger;
    if !std::env::var(ledger::ENV_VAR).is_ok_and(|v| !v.is_empty()) {
        return;
    }
    let params = report.final_params.len() as u64;
    let atoms_per_step = cfg.n_atoms as u64;
    let atoms_seen = atoms_per_step * report.losses.len() as u64;
    let mut rec = ledger::RunRecord::new("graphpar", params, atoms_seen, cfg.world);
    rec.steps = report.losses.len() as u64;
    rec.wall_s = wall.as_secs_f64();
    rec.loss = report.losses.last().copied().unwrap_or(f32::NAN) as f64;
    rec.curve = report
        .losses
        .iter()
        .enumerate()
        .map(|(i, l)| {
            (
                ledger::flop_estimate(params, atoms_per_step * (i as u64 + 1)),
                *l as f64,
            )
        })
        .collect();
    ledger::append_from_env(&rec);
}

fn run_rank(cfg: &GraphParConfig, comm: Communicator) -> RankOutcome {
    matgnn_telemetry::set_rank(comm.rank());
    let out = run_rank_inner(cfg, comm);
    matgnn_telemetry::clear_rank();
    matgnn_telemetry::clear_step();
    out
}

fn run_rank_inner(cfg: &GraphParConfig, mut comm: Communicator) -> RankOutcome {
    // Faults target the rank a process was *launched* as: survivors are
    // renumbered after elastic recovery, and an event must not migrate
    // onto a different process when a step is redone.
    let launch_rank = comm.rank();
    let structure = synthetic_slab(cfg.n_atoms, cfg.seed);
    let plan = PartitionPlan::build(&structure, cfg.cutoff, cfg.n_parts);
    let mut model = Egnn::new(
        EgnnConfig::new(cfg.hidden_dim, cfg.n_layers).with_seed(cfg.seed.wrapping_add(1)),
    );
    let n_params = model.params().n_scalars();
    let mut flat_params: Vec<f32> = model.params().flatten().data().to_vec();

    // Replicated Adam state (moments held in full by every rank) …
    let mut m = vec![0.0f32; n_params];
    let mut v = vec![0.0f32; n_params];
    let mut t: u64 = 0;
    // … or a ZeRO shard. Chaos runs mirror the full moments after each
    // step so a shrunk group can re-shard without the dead rank's slice
    // (a real deployment reads them from the checkpoint instead).
    let mut zero = cfg
        .zero
        .then(|| ZeroAdam::new(n_params, comm.rank(), comm.world(), cfg.adam, None));
    let mut zero_mirror: Option<(Vec<f32>, Vec<f32>, u64)> = None;

    let mut batches = {
        let (p0, p1) = parts_for_rank(cfg.n_parts, comm.world(), comm.rank());
        local_batches(&plan, p0, p1)
    };
    let mut losses = Vec::with_capacity(cfg.steps);
    let mut recoveries = 0usize;
    let mut owned_atoms = 0;
    let mut ghost_atoms = 0;
    let mut halo_bytes_per_step = 0;

    let mut step = 0usize;
    while step < cfg.steps {
        matgnn_telemetry::set_step(step as u64);
        let before = comm.stats();
        let result = {
            let mut channel = DistHalo::new(&mut comm, &plan);
            if let Some(kind) = cfg
                .fault_plan
                .check_at(launch_rank, step as u64, FaultSite::Halo)
            {
                channel.arm_fault(kind);
            }
            graphpar_step(&model, &plan, &batches, &mut channel, &cfg.loss)
        };
        match result {
            Ok(out) => {
                let flat_grads = flatten_grads(&out.grads, n_params);
                if let Some(z) = zero.as_mut() {
                    // Gradients are already globally reduced; hand the
                    // shard straight to the sharded update, pre-scaled
                    // to cancel the internal 1/world mean.
                    let (s, e) = z.shard();
                    let w = comm.world() as f32;
                    let shard: Vec<f32> = flat_grads[s..e].iter().map(|g| g * w).collect();
                    if let Err(err) =
                        z.step_with_reduced_shard(&mut comm, &mut flat_params, shard, cfg.lr)
                    {
                        return RankOutcome::Failed(format!("zero step: {err}"));
                    }
                    if !cfg.fault_plan.is_empty() {
                        match z.gather_state(&mut comm) {
                            Ok(state) => zero_mirror = Some(state),
                            Err(err) => return RankOutcome::Failed(format!("zero mirror: {err}")),
                        }
                    }
                } else {
                    t += 1;
                    adam_update(
                        &mut flat_params,
                        &flat_grads,
                        &mut m,
                        &mut v,
                        t,
                        cfg.lr,
                        &cfg.adam,
                    );
                }
                model
                    .params_mut()
                    .unflatten_from(&Tensor::from_vec(n_params, flat_params.clone()).unwrap());
                if cfg.overlap_comm {
                    // Per-part halo pushes hide behind the next part's
                    // kernels in a pipelined deployment; credit the
                    // step's halo time as overlapped. Accounting only —
                    // the bits above never depend on this.
                    let delta = comm.stats().modeled_seconds - before.modeled_seconds;
                    comm.credit_overlap(delta);
                }
                losses.push(out.loss);
                owned_atoms = out.owned_atoms;
                ghost_atoms = out.ghost_atoms;
                halo_bytes_per_step = out.halo_bytes;
                step += 1;
            }
            Err(HaloError(msg)) => {
                // A hung rank that the group timed out on leaves the
                // run, mirroring watchdog escalation: it marks itself
                // failed so the survivors' regroup excludes it.
                let hung_me = matches!(
                    cfg.fault_plan
                        .check_at(launch_rank, step as u64, FaultSite::Halo),
                    Some(FaultKind::Hang)
                );
                if hung_me {
                    comm.mark_failed();
                    return RankOutcome::Excused;
                }
                recoveries += 1;
                if recoveries > cfg.max_recoveries {
                    return RankOutcome::Failed(format!("recovery budget exhausted after: {msg}"));
                }
                matgnn_telemetry::health_event("halo_failure", &msg);
                comm = match comm.split_survivors(cfg.comm_timeout * 4) {
                    Ok(fresh) => fresh,
                    Err(err) => return RankOutcome::Failed(format!("regroup: {err}")),
                };
                // Same plan, fewer ranks: re-derive the local part run
                // and re-shard the optimizer; then redo this step. The
                // canonical reductions make the redone step bitwise
                // equal to what the full group would have produced.
                let (p0, p1) = parts_for_rank(cfg.n_parts, comm.world(), comm.rank());
                batches = local_batches(&plan, p0, p1);
                if zero.is_some() {
                    let (fm, fv, ft) = zero_mirror
                        .clone()
                        .unwrap_or_else(|| (vec![0.0; n_params], vec![0.0; n_params], 0));
                    zero = Some(ZeroAdam::from_full_state(
                        n_params,
                        comm.rank(),
                        comm.world(),
                        cfg.adam,
                        None,
                        &fm,
                        &fv,
                        ft,
                    ));
                }
            }
        }
    }
    RankOutcome::Done(GraphParReport {
        losses,
        final_params: flat_params,
        final_world: comm.world(),
        recoveries,
        owned_atoms,
        ghost_atoms,
        halo_bytes_per_step,
        stats: comm.stats(),
    })
}

fn flatten_grads(grads: &[Tensor], n_params: usize) -> Vec<f32> {
    let mut flat = Vec::with_capacity(n_params);
    for g in grads {
        flat.extend_from_slice(g.data());
    }
    debug_assert_eq!(flat.len(), n_params);
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn trajectory_is_invariant_to_world_size() {
        let run = |world: usize| {
            train_graphpar(&GraphParConfig {
                world,
                ..GraphParConfig::default()
            })
        };
        let reference = run(1);
        assert_eq!(reference.losses.len(), 3);
        for world in [2, 4] {
            let r = run(world);
            assert_eq!(bits(&r.losses), bits(&reference.losses), "W={world}");
            assert_eq!(
                bits(&r.final_params),
                bits(&reference.final_params),
                "W={world}"
            );
        }
    }

    #[test]
    fn zero_on_off_is_bitwise_identical() {
        for world in [2, 4] {
            let run = |zero: bool| {
                train_graphpar(&GraphParConfig {
                    world,
                    zero,
                    ..GraphParConfig::default()
                })
            };
            let dense = run(false);
            let sharded = run(true);
            assert_eq!(bits(&dense.losses), bits(&sharded.losses), "W={world}");
            assert_eq!(
                bits(&dense.final_params),
                bits(&sharded.final_params),
                "W={world}"
            );
        }
    }

    #[test]
    fn overlap_changes_accounting_not_bits() {
        let run = |overlap_comm: bool| {
            train_graphpar(&GraphParConfig {
                world: 2,
                overlap_comm,
                ..GraphParConfig::default()
            })
        };
        let sync = run(false);
        let overlapped = run(true);
        assert_eq!(bits(&sync.losses), bits(&overlapped.losses));
        assert_eq!(bits(&sync.final_params), bits(&overlapped.final_params));
        assert_eq!(sync.stats.overlapped_seconds, 0.0);
        assert!(overlapped.stats.overlapped_seconds > 0.0);
        assert!(overlapped.stats.overlapped_seconds <= overlapped.stats.modeled_seconds);
    }

    #[test]
    fn kill_in_halo_recovers_and_continues_bitwise() {
        let reference = train_graphpar(&GraphParConfig {
            world: 1,
            steps: 4,
            ..GraphParConfig::default()
        });
        let chaotic = train_graphpar(&GraphParConfig {
            world: 3,
            steps: 4,
            fault_plan: FaultPlan::parse("kill@rank2,step1,halo").unwrap(),
            comm_timeout: Duration::from_secs(5),
            ..GraphParConfig::default()
        });
        assert_eq!(chaotic.recoveries, 1);
        assert_eq!(chaotic.final_world, 2);
        assert_eq!(chaotic.losses.len(), 4);
        // The interrupted trajectory is the uninterrupted one, bit for bit.
        assert_eq!(bits(&chaotic.losses), bits(&reference.losses));
        assert_eq!(bits(&chaotic.final_params), bits(&reference.final_params));
    }

    #[test]
    fn hang_in_halo_excuses_the_rank_and_survivors_continue() {
        let reference = train_graphpar(&GraphParConfig {
            world: 1,
            steps: 3,
            ..GraphParConfig::default()
        });
        let chaotic = train_graphpar(&GraphParConfig {
            world: 2,
            steps: 3,
            fault_plan: FaultPlan::parse("hang@rank1,step1,halo").unwrap(),
            comm_timeout: Duration::from_millis(300),
            ..GraphParConfig::default()
        });
        assert_eq!(chaotic.recoveries, 1);
        assert_eq!(chaotic.final_world, 1);
        assert_eq!(bits(&chaotic.losses), bits(&reference.losses));
        assert_eq!(bits(&chaotic.final_params), bits(&reference.final_params));
    }

    #[test]
    fn zero_recovery_reshards_from_the_mirror() {
        let reference = train_graphpar(&GraphParConfig {
            world: 4,
            steps: 3,
            zero: true,
            ..GraphParConfig::default()
        });
        // Kill one of four ranks: the survivors re-shard from the
        // mirrored moments. Post-recovery worlds are not a power of
        // two, so the zero-path scaling is no longer exactly cancelled;
        // the run must still complete and stay close.
        let chaotic = train_graphpar(&GraphParConfig {
            world: 4,
            steps: 3,
            zero: true,
            fault_plan: FaultPlan::parse("kill@rank3,step1,halo").unwrap(),
            comm_timeout: Duration::from_secs(5),
            ..GraphParConfig::default()
        });
        assert_eq!(chaotic.recoveries, 1);
        assert_eq!(chaotic.final_world, 3);
        assert_eq!(chaotic.losses.len(), 3);
        for (a, b) in chaotic.final_params.iter().zip(&reference.final_params) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()));
        }
    }
}
