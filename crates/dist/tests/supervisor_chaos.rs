//! Chaos tests of the run supervisor: injected numerical anomalies roll
//! the group back to the last good checkpoint with a bitwise-identical
//! post-rollback trajectory, and a hung rank is caught by its progress
//! watchdog and cut from the group long before the collective timeout
//! (let alone the test harness timeout) would.
//!
//! Telemetry is process-global, so the scenarios run sequentially inside
//! one test body (the same pattern as the telemetry integration tests)
//! and share one sink directory whose health stream is asserted at the
//! end.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_dist::{train_ddp, DdpConfig, FaultPlan};
use matgnn_model::{Egnn, EgnnConfig, GnnModel};
use matgnn_train::SupervisorConfig;

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matgnn_supchaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn data() -> (Dataset, Normalizer) {
    let ds = Dataset::generate_aggregate(64, 5, &GeneratorConfig::default());
    let norm = Normalizer::fit(&ds);
    (ds, norm)
}

fn base_cfg(dir: &Path) -> DdpConfig {
    DdpConfig {
        world: 4,
        epochs: 2,
        batch_size: 2,
        seed: 13,
        comm_timeout: Duration::from_secs(5),
        checkpoint_dir: Some(dir.to_path_buf()),
        checkpoint_every: 1,
        ..Default::default()
    }
}

/// One supervised 4-rank run with the given fault plan; returns the
/// report and final parameters.
fn run_supervised(
    tag: &str,
    plan: FaultPlan,
    supervise: Option<SupervisorConfig>,
) -> (matgnn_dist::DdpReport, matgnn_tensor::Tensor) {
    let (ds, norm) = data();
    let dir = chaos_dir(tag);
    let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
    let cfg = DdpConfig {
        fault_plan: plan,
        supervise,
        ..base_cfg(&dir)
    };
    let report = train_ddp(&mut model, &ds, &norm, &cfg);
    let _ = std::fs::remove_dir_all(&dir);
    (report, model.params().flatten())
}

#[test]
fn supervisor_chaos() {
    let telemetry_dir = chaos_dir("telemetry");
    matgnn_telemetry::init(&telemetry_dir).unwrap();

    nan_rollback_is_bitwise_identical_to_a_clean_run();
    spiked_loss_rolls_back_too();
    hung_rank_is_cut_by_the_watchdog_and_survivors_regroup();

    matgnn_telemetry::shutdown();
    health_stream_recorded_the_interventions(&telemetry_dir);
    let _ = std::fs::remove_dir_all(&telemetry_dir);
}

/// The acceptance scenario: rank 1's gradient turns NaN at global step 3
/// of a supervised 4-rank run. All ranks reach the anomaly verdict by
/// consensus, roll back to the step-2 checkpoint, and retry — and because
/// the fault is transient, the retried trajectory (and the final
/// parameters) are bitwise-identical to a run that never saw the fault.
fn nan_rollback_is_bitwise_identical_to_a_clean_run() {
    let (clean_report, clean_params) = run_supervised("nan_clean", FaultPlan::none(), None);
    let (report, params) = run_supervised(
        "nan_chaos",
        "nan@rank1,step3".parse().unwrap(),
        // Per-rank losses at batch size 2 are noisy; a high spike
        // threshold keeps this scenario about the NaN probe alone, so
        // the rollback count stays exact.
        Some(SupervisorConfig {
            spike_threshold: 100.0,
            ..Default::default()
        }),
    );

    assert_eq!(report.rollbacks, 1, "exactly one supervised rollback");
    assert_eq!(report.recoveries, 0, "rollback must not re-form the group");
    assert_eq!(report.final_world, 4, "no rank should die");
    assert!(report.failed_ranks.is_empty());
    assert_eq!(report.epoch_loss.len(), clean_report.epoch_loss.len());
    for (epoch, (a, b)) in report
        .epoch_loss
        .iter()
        .zip(&clean_report.epoch_loss)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {epoch} loss differs between NaN-chaos run and clean run: {a} vs {b}"
        );
    }
    assert!(
        clean_params.allclose(&params, 0.0),
        "post-rollback parameters diverged from the uninjected run"
    );
}

/// A spiked (finite but huge) loss reading is also rolled back, through
/// the rolling-median detector rather than the NaN probe.
fn spiked_loss_rolls_back_too() {
    let (clean_report, clean_params) = run_supervised("spike_clean", FaultPlan::none(), None);
    let (report, params) = run_supervised(
        "spike_chaos",
        "spike@rank2,step6,1000000".parse().unwrap(),
        // Window of 4: full before the step-6 injection fires. The 10^6
        // injected factor dwarfs the 100x threshold, which in turn is
        // out of reach of natural batch-to-batch loss noise.
        Some(SupervisorConfig {
            anomaly_window: 4,
            spike_threshold: 100.0,
            ..Default::default()
        }),
    );

    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.final_world, 4);
    for (a, b) in report.epoch_loss.iter().zip(&clean_report.epoch_loss) {
        assert_eq!(a.to_bits(), b.to_bits(), "spike rollback perturbed the run");
    }
    assert!(clean_params.allclose(&params, 0.0));
}

/// A rank wedged outside any collective beats its heartbeat no more; its
/// own watchdog fires at the progress deadline, poisons the group, and
/// the three survivors re-form and finish from the last checkpoint —
/// orders of magnitude sooner than the 5 s collective timeout compounded
/// over the remaining steps would allow.
fn hung_rank_is_cut_by_the_watchdog_and_survivors_regroup() {
    let (ds, norm) = data();
    let dir = chaos_dir("hang");
    let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
    let cfg = DdpConfig {
        fault_plan: "hang@rank1,step3".parse().unwrap(),
        progress_deadline: Some(Duration::from_millis(250)),
        ..base_cfg(&dir)
    };
    let start = Instant::now();
    let report = train_ddp(&mut model, &ds, &norm, &cfg);
    let elapsed = start.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.failed_ranks, vec![1], "rank 1 should have been cut");
    assert_eq!(report.final_world, 3, "survivors re-form with world 3");
    assert_eq!(report.recoveries, 1, "one elastic recovery cycle");
    assert!(report.ranks[1].killed, "the hung rank counts as dead");
    assert!(
        report.ranks[1].watchdog_fired,
        "the hang must be caught by the hung rank's own watchdog"
    );
    assert!(
        !report.ranks[0].watchdog_fired,
        "peers were parked, not stalled"
    );
    assert_eq!(report.epoch_loss.len(), 2);
    assert!(report.epoch_loss.iter().all(|l| l.is_finite()));
    assert!(
        elapsed < Duration::from_secs(60),
        "hang recovery took {elapsed:?}; the watchdog did not shortcut the timeout"
    );
}

/// The health JSONL stream must carry the supervisor's story: anomaly
/// verdicts, the rollbacks, and the watchdog escalation.
fn health_stream_recorded_the_interventions(dir: &Path) {
    let mut health = String::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            health.push_str(&std::fs::read_to_string(&path).unwrap_or_default());
        }
    }
    for kind in [
        "supervisor.anomaly",
        "supervisor.rollback",
        "supervisor.watchdog",
    ] {
        assert!(
            health.contains(kind),
            "health stream is missing {kind:?} events"
        );
    }
    // Every health line must validate against the v2 schema.
    let mut checked = 0;
    for line in health.lines() {
        if line.contains("\"type\":\"health\"") {
            matgnn_telemetry::json::validate_event_line(line)
                .unwrap_or_else(|e| panic!("{e}: {line}"));
            checked += 1;
        }
    }
    assert!(
        checked >= 3,
        "expected at least 3 health lines, got {checked}"
    );
}
