//! Bitwise guard: enabling telemetry must not change a single bit of a
//! training trajectory — the same discipline the pool/recycler/prefetch
//! suites enforce. Own integration-test binary: telemetry enable state
//! is process-global.

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_model::{Egnn, EgnnConfig, GnnModel};
use matgnn_train::{TrainConfig, Trainer};

fn run_training() -> (Vec<u64>, Vec<u32>) {
    let (train, test) = Dataset::generate_split(24, 0.25, 13, &GeneratorConfig::default());
    let norm = Normalizer::fit(&train);
    let mut model = Egnn::new(EgnnConfig::new(8, 3).with_seed(7));
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 6,
        seed: 5,
        checkpointing: true,
        prefetch_depth: 2,
        ..Default::default()
    };
    let report = Trainer::new(cfg).fit(&mut model, &train, Some(&test), &norm);
    let losses: Vec<u64> = report
        .epochs
        .iter()
        .flat_map(|e| {
            [
                e.train_loss.to_bits(),
                e.test_loss.unwrap_or(f64::NAN).to_bits(),
            ]
        })
        .collect();
    let params: Vec<u32> = model
        .params()
        .flatten()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (losses, params)
}

#[test]
fn telemetry_on_and_off_trajectories_are_bitwise_identical() {
    let off = run_training();

    let dir = std::env::temp_dir().join(format!(
        "matgnn-train-telemetry-bitwise-{pid}",
        pid = std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    matgnn_telemetry::init(&dir).unwrap();
    matgnn_telemetry::set_rank(0);
    let on = run_training();
    matgnn_telemetry::clear_rank();
    matgnn_telemetry::shutdown();

    assert_eq!(off.0, on.0, "per-epoch losses diverged under telemetry");
    assert_eq!(off.1, on.1, "final parameters diverged under telemetry");

    // While we are here: the enabled run actually produced events for
    // every expected training phase.
    let log = std::fs::read_to_string(dir.join("events-rank0.jsonl")).unwrap();
    for phase in [
        "\"data.load\"",
        "\"step\"",
        "\"forward\"",
        "\"loss\"",
        "\"backward\"",
        "\"optimizer\"",
        "\"evaluate\"",
        "\"prefetch.producer\"",
        "\"data.graph_build\"",
    ] {
        assert!(log.contains(phase), "missing {phase} span in event log");
    }
    for line in log.lines() {
        matgnn_telemetry::json::validate_event_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
}
