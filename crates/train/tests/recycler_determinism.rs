//! End-to-end guarantee behind the buffer recycler: a full training run
//! produces bitwise-identical losses and final parameters whether tensor
//! buffers come from the size-bucketed free list or fresh from the
//! allocator. Runs at pool-of-2 so recycled buffers also cross worker
//! threads mid-run.

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_model::{Egnn, EgnnConfig, GnnModel};
use matgnn_tensor::{pool, recycler};
use matgnn_train::{TrainConfig, Trainer};

fn run_once() -> Vec<u64> {
    let (train, test) = Dataset::generate_split(16, 0.25, 7, &GeneratorConfig::default());
    let norm = Normalizer::fit(&train);
    let mut model = Egnn::new(EgnnConfig::new(64, 2));
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    })
    .fit(&mut model, &train, Some(&test), &norm);
    let mut bits: Vec<u64> = report
        .epochs
        .iter()
        .flat_map(|e| [e.train_loss.to_bits(), e.test_loss.unwrap_or(0.0).to_bits()])
        .collect();
    bits.extend(
        model
            .params()
            .flatten()
            .data()
            .iter()
            .map(|x| u64::from(x.to_bits())),
    );
    bits
}

#[test]
fn training_bitwise_identical_recycler_on_vs_off() {
    pool::set_thread_override(2);
    recycler::set_enabled_override(Some(false));
    let fresh = run_once();
    recycler::set_enabled_override(Some(true));
    let recycled = run_once();
    recycler::set_enabled_override(None);
    pool::set_thread_override(0);
    assert_eq!(
        fresh, recycled,
        "training diverged between recycler off and on"
    );
}
