//! End-to-end guarantee behind PR 1's bitwise checkpoint/resume: a full
//! training run produces bitwise-identical losses no matter how many
//! workers the compute pool uses. The model is sized so the EGNN matmuls
//! clear the kernel parallel threshold and genuinely exercise the pooled
//! code paths.

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_model::{Egnn, EgnnConfig};
use matgnn_tensor::pool;
use matgnn_train::{TrainConfig, Trainer};

fn losses_once() -> Vec<u64> {
    let (train, test) = Dataset::generate_split(16, 0.25, 7, &GeneratorConfig::default());
    let norm = Normalizer::fit(&train);
    let mut model = Egnn::new(EgnnConfig::new(64, 2));
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    })
    .fit(&mut model, &train, Some(&test), &norm);
    report
        .epochs
        .iter()
        .flat_map(|e| [e.train_loss.to_bits(), e.test_loss.unwrap_or(0.0).to_bits()])
        .collect()
}

#[test]
fn training_losses_bitwise_identical_across_pool_sizes() {
    pool::set_thread_override(1);
    let serial = losses_once();
    pool::set_thread_override(4);
    let pooled = losses_once();
    pool::set_thread_override(0);
    assert_eq!(
        serial, pooled,
        "training diverged between pool-of-1 and pool-of-4"
    );
}
