//! Bitwise determinism of the prefetching pipeline: any prefetch depth
//! must reproduce the synchronous trajectory exactly — same epoch losses,
//! same final parameters — because the producer thread runs the identical
//! batch iterator, merely ahead of time.

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_model::{Egnn, EgnnConfig, GnnModel};
use matgnn_train::{TrainConfig, Trainer};

fn trajectory(prefetch_depth: usize) -> Vec<u64> {
    let (train, test) = Dataset::generate_split(30, 0.2, 23, &GeneratorConfig::default());
    let norm = Normalizer::fit(&train);
    let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(4));
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 8,
        seed: 5,
        prefetch_depth,
        ..Default::default()
    };
    let report = Trainer::new(cfg).fit(&mut model, &train, Some(&test), &norm);
    let mut bits: Vec<u64> = report
        .epochs
        .iter()
        .map(|e| e.train_loss.to_bits())
        .collect();
    bits.extend(
        report
            .epochs
            .iter()
            .filter_map(|e| e.test_loss)
            .map(f64::to_bits),
    );
    bits.extend(
        model
            .params()
            .flatten()
            .data()
            .iter()
            .map(|x| u64::from(x.to_bits())),
    );
    bits
}

#[test]
fn prefetch_depths_produce_identical_trajectories() {
    let sync = trajectory(0);
    for depth in [1, 4] {
        assert_eq!(sync, trajectory(depth), "prefetch depth {depth} diverged");
    }
}
