//! End-to-end SIMD-tier guarantees for training (PR 7): a full training
//! run on the vector tier must (a) track the scalar tier's loss
//! trajectory to tight tolerance — FMA contraction and the polynomial
//! `exp` perturb each step by ulps, compounding only mildly over steps —
//! and (b) remain **bitwise** invariant to pool size within either tier,
//! which is the property checkpoints and DDP replicas rely on.

use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
use matgnn_model::{Egnn, EgnnConfig};
use matgnn_tensor::{pool, simd};
use matgnn_train::{TrainConfig, Trainer};
use std::sync::Mutex;

/// Serializes tier-flipping tests on the parallel test runner.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Per-epoch train/test losses for a short seeded run at a fixed pool size.
fn losses_once(threads: usize) -> Vec<f64> {
    pool::set_thread_override(threads);
    let (train, test) = Dataset::generate_split(16, 0.25, 7, &GeneratorConfig::default());
    let norm = Normalizer::fit(&train);
    let mut model = Egnn::new(EgnnConfig::new(64, 2));
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    })
    .fit(&mut model, &train, Some(&test), &norm);
    pool::set_thread_override(0);
    report
        .epochs
        .iter()
        .flat_map(|e| [e.train_loss, e.test_loss.unwrap_or(0.0)])
        .collect()
}

#[test]
fn training_trajectory_matches_across_simd_tiers() {
    let _guard = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    simd::set_simd_override(Some(simd::SimdTier::Scalar));
    let scalar = losses_once(1);
    simd::set_simd_override(None);
    assert!(
        scalar.iter().all(|l| l.is_finite()),
        "scalar-tier run produced non-finite losses: {scalar:?}"
    );

    // `MATGNN_SIMD=off` vs the detected tier. On hardware without a
    // vector tier this compares the scalar tier against itself, which
    // still pins the finite-and-stable property.
    let vector = losses_once(1);
    assert!(
        vector.iter().all(|l| l.is_finite()),
        "vector-tier run produced non-finite losses: {vector:?}"
    );
    for (step, (s, v)) in scalar.iter().zip(&vector).enumerate() {
        let diff = (s - v).abs() / (1.0 + s.abs());
        assert!(
            diff <= 5e-3,
            "loss {step} diverged across tiers: scalar {s} vs vector {v} (rel {diff:e})"
        );
    }
}

#[test]
fn training_bitwise_invariant_to_pool_size_within_each_tier() {
    let _guard = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let mut tiers = vec![simd::SimdTier::Scalar];
    if simd::avx2_available() {
        tiers.push(simd::SimdTier::Avx2);
    }
    if simd::avx512_available() {
        tiers.push(simd::SimdTier::Avx512);
    }
    for tier in tiers {
        simd::set_simd_override(Some(tier));
        let reference: Vec<u64> = losses_once(1).iter().map(|l| l.to_bits()).collect();
        for threads in [2usize, 4] {
            let got: Vec<u64> = losses_once(threads).iter().map(|l| l.to_bits()).collect();
            assert_eq!(
                reference, got,
                "{tier}: training losses changed between pool-of-1 and pool-of-{threads}"
            );
        }
        simd::set_simd_override(None);
    }
}
