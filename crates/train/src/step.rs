//! Single training steps: the vanilla one-tape path and the
//! activation-checkpointed path.
//!
//! Checkpointing here is the real algorithm (Chen et al., adopted by the
//! paper in Sec. V-B): the forward pass stores only segment-boundary
//! tensors; during backward each segment is **recomputed** on a fresh tape
//! and differentiated with the downstream segment's input gradients as
//! seeds. The two paths produce identical gradients (tested to f32
//! tolerance) but very different activation footprints and wall times —
//! which is exactly what the paper's Table II measures.

use matgnn_data::Targets;
use matgnn_graph::GraphBatch;
use matgnn_model::{GnnModel, ModelOutput, ParamSet};
use matgnn_tensor::{Gradients, MemoryCategory, MemoryTracker, Tape, Tensor, Var};

use crate::LossConfig;

/// The result of one optimization step's forward+backward.
#[derive(Debug)]
pub struct StepOutcome {
    /// Scalar loss value.
    pub loss: f64,
    /// Parameter gradients aligned with the model's [`ParamSet`].
    pub grads: Vec<Tensor>,
}

fn new_tape(tracker: Option<&MemoryTracker>) -> Tape {
    match tracker {
        Some(t) => Tape::with_tracker(t.clone()),
        None => Tape::new(),
    }
}

fn collect_param_grads(params: &ParamSet, pvars: &[Var], grads: &mut Gradients) -> Vec<Tensor> {
    pvars
        .iter()
        .zip(params.iter())
        .map(|(&v, e)| {
            grads
                .take(v)
                .unwrap_or_else(|| Tensor::zeros(e.tensor.shape().clone()))
        })
        .collect()
}

/// Runs forward + backward on a single tape (the baseline path).
pub fn vanilla_step<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
) -> StepOutcome {
    vanilla_impl(model, batch, targets, loss_cfg, tracker, None)
}

/// [`vanilla_step`] with an early-gradient sink: each parameter's gradient
/// is handed to `sink(param_index, grad)` the moment backward finalizes it
/// (see [`Tape::backward_with_leaf_sink`]) instead of being collected into
/// a [`StepOutcome`]. Gradient values are bitwise-identical to
/// [`vanilla_step`]; only the hand-off point moves. Returns the loss.
pub fn vanilla_step_with_sink<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
    sink: &mut dyn FnMut(usize, Tensor),
) -> f64 {
    vanilla_impl(model, batch, targets, loss_cfg, tracker, Some(sink)).loss
}

fn vanilla_impl<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
    sink: Option<&mut dyn FnMut(usize, Tensor)>,
) -> StepOutcome {
    let mut tape = new_tape(tracker);
    let (pvars, out) = {
        let _span = matgnn_telemetry::span("forward");
        let pvars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &pvars, batch);
        (pvars, out)
    };
    let (loss, loss_val) = {
        let _span = matgnn_telemetry::span("loss");
        let loss = loss_cfg.compute(&mut tape, out, batch, targets);
        let loss_val = tape.value(loss).item() as f64;
        (loss, loss_val)
    };
    if let Some(t) = tracker {
        t.snapshot("after forward");
    }
    let g = {
        let _span = matgnn_telemetry::span("backward");
        match sink {
            Some(s) => {
                let _ = tape.backward_with_leaf_sink(loss, &pvars, s);
                Vec::new()
            }
            None => {
                let mut grads = tape.backward(loss);
                collect_param_grads(model.params(), &pvars, &mut grads)
            }
        }
    };
    if let Some(t) = tracker {
        t.snapshot("after backward");
    }
    StepOutcome {
        loss: loss_val,
        grads: g,
    }
}

/// Runs forward + backward with activation checkpointing over the model's
/// segments.
///
/// Forward keeps only segment-boundary tensors; backward recomputes each
/// segment (including the loss in the last one) and chains gradients with
/// [`Tape::backward_seeded`].
pub fn checkpointed_step<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
) -> StepOutcome {
    checkpointed_impl(model, batch, targets, loss_cfg, tracker, None)
}

/// [`checkpointed_step`] with an early-gradient sink (see
/// [`vanilla_step_with_sink`]): parameters are emitted per recomputed
/// segment — last segment's parameters first — so gradient communication
/// can start while earlier segments are still being recomputed. Returns
/// the loss.
pub fn checkpointed_step_with_sink<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
    sink: &mut dyn FnMut(usize, Tensor),
) -> f64 {
    checkpointed_impl(model, batch, targets, loss_cfg, tracker, Some(sink)).loss
}

fn checkpointed_impl<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    tracker: Option<&MemoryTracker>,
    mut sink: Option<&mut dyn FnMut(usize, Tensor)>,
) -> StepOutcome {
    let n_seg = model.n_segments();
    let params = model.params();

    // ---- Forward: store only boundary states -------------------------
    // boundaries[k] = input state of segment k; boundaries[n_seg] = output.
    let fwd_span = matgnn_telemetry::span("forward");
    let mut boundaries: Vec<Vec<Tensor>> = Vec::with_capacity(n_seg + 1);
    boundaries.push(Vec::new());
    let mut boundary_bytes: Vec<u64> = vec![0; n_seg + 1];
    for seg in 0..n_seg {
        let mut tape = new_tape(tracker);
        let (start, end) = model.segment_param_range(seg);
        let pvars = params.bind_range(&mut tape, start, end);
        let state_vars: Vec<Var> = boundaries[seg]
            .iter()
            .map(|t| tape.constant(t.clone()))
            .collect();
        let out_vars = model.segment_forward(&mut tape, seg, &pvars, batch, &state_vars);
        let out_vals: Vec<Tensor> = out_vars.iter().map(|&v| tape.value(v).clone()).collect();
        // Retained boundary tensors are the activations checkpointing pays
        // for; everything else on `tape` is freed when it drops here.
        let bytes: u64 = out_vals.iter().map(|t| t.bytes() as u64).sum();
        if let Some(t) = tracker {
            t.alloc(MemoryCategory::Activations, bytes);
        }
        boundary_bytes[seg + 1] = bytes;
        boundaries.push(out_vals);
    }
    if let Some(t) = tracker {
        t.snapshot("after forward (checkpointed)");
    }
    drop(fwd_span);

    // ---- Backward: recompute segment-by-segment in reverse -----------
    let bwd_span = matgnn_telemetry::span("backward");
    let mut param_grads: Vec<Option<Tensor>> = (0..params.len()).map(|_| None).collect();
    let mut state_seeds: Vec<Tensor> = Vec::new();
    let mut loss_val = 0.0f64;
    for seg in (0..n_seg).rev() {
        let mut tape = new_tape(tracker);
        let (start, end) = model.segment_param_range(seg);
        let pvars = params.bind_range(&mut tape, start, end);
        // Bind the segment's input state as parameters so gradients flow
        // out of the segment and can seed the next (earlier) one.
        let state_vars: Vec<Var> = boundaries[seg]
            .iter()
            .map(|t| tape.param(t.clone()))
            .collect();
        let out_vars = model.segment_forward(&mut tape, seg, &pvars, batch, &state_vars);

        let mut grads = if seg == n_seg - 1 {
            assert_eq!(
                out_vars.len(),
                2,
                "final segment must return [energy, forces]"
            );
            let out = ModelOutput {
                energy: out_vars[0],
                forces: out_vars[1],
            };
            let loss = {
                let _span = matgnn_telemetry::span("loss");
                loss_cfg.compute(&mut tape, out, batch, targets)
            };
            loss_val = tape.value(loss).item() as f64;
            match &mut sink {
                Some(s) => {
                    let mut seg_sink = |k: usize, g: Tensor| s(start + k, g);
                    tape.backward_with_leaf_sink(loss, &pvars, &mut seg_sink)
                }
                None => tape.backward(loss),
            }
        } else {
            assert_eq!(
                out_vars.len(),
                state_seeds.len(),
                "segment state arity changed"
            );
            let seeds: Vec<(Var, Tensor)> = out_vars
                .iter()
                .copied()
                .zip(state_seeds.drain(..))
                .collect();
            match &mut sink {
                Some(s) => {
                    let mut seg_sink = |k: usize, g: Tensor| s(start + k, g);
                    tape.backward_seeded_with_leaf_sink(&seeds, &pvars, &mut seg_sink)
                }
                None => tape.backward_seeded(&seeds),
            }
        };

        if sink.is_none() {
            for (k, &v) in pvars.iter().enumerate() {
                param_grads[start + k] =
                    Some(grads.take(v).unwrap_or_else(|| {
                        Tensor::zeros(params.tensor(start + k).shape().clone())
                    }));
            }
        }
        state_seeds = state_vars
            .iter()
            .zip(boundaries[seg].iter())
            .map(|(&v, t)| {
                grads
                    .take(v)
                    .unwrap_or_else(|| Tensor::zeros(t.shape().clone()))
            })
            .collect();

        // The downstream boundary (this segment's output) is no longer
        // needed; release its retained-activation accounting and hand the
        // buffers to the recycler (this loop iteration's tape dropped the
        // last competing reference when the previous iteration ended).
        if let Some(t) = tracker {
            if boundary_bytes[seg + 1] > 0 {
                t.free(MemoryCategory::Activations, boundary_bytes[seg + 1]);
                boundary_bytes[seg + 1] = 0;
            }
        }
        for b in boundaries[seg + 1].drain(..) {
            b.recycle();
        }
    }
    if let Some(t) = tracker {
        t.snapshot("after backward (checkpointed)");
    }
    drop(bwd_span);

    let grads = if sink.is_some() {
        Vec::new()
    } else {
        param_grads
            .into_iter()
            .enumerate()
            .map(|(i, g)| g.unwrap_or_else(|| Tensor::zeros(params.tensor(i).shape().clone())))
            .collect()
    };
    StepOutcome {
        loss: loss_val,
        grads,
    }
}

/// Dispatches to the vanilla or checkpointed step.
pub fn train_step<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    checkpointed: bool,
    tracker: Option<&MemoryTracker>,
) -> StepOutcome {
    if checkpointed {
        checkpointed_step(model, batch, targets, loss_cfg, tracker)
    } else {
        vanilla_step(model, batch, targets, loss_cfg, tracker)
    }
}

/// Dispatches to the vanilla or checkpointed sink-based step; returns the
/// loss, delivering every parameter gradient through `sink` exactly once.
pub fn train_step_with_sink<M: GnnModel + ?Sized>(
    model: &M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    checkpointed: bool,
    tracker: Option<&MemoryTracker>,
    sink: &mut dyn FnMut(usize, Tensor),
) -> f64 {
    if checkpointed {
        checkpointed_step_with_sink(model, batch, targets, loss_cfg, tracker, sink)
    } else {
        vanilla_step_with_sink(model, batch, targets, loss_cfg, tracker, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::{collate, Dataset, GeneratorConfig, Normalizer, Sample};
    use matgnn_model::{Egnn, EgnnConfig, Gcn, GcnConfig};

    fn setup(n: usize) -> (GraphBatch, Targets) {
        let ds = Dataset::generate_aggregate(n, 17, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        let samples: Vec<&Sample> = ds.samples().iter().collect();
        collate(&samples, &norm)
    }

    #[test]
    fn checkpointed_matches_vanilla_gradients_egnn() {
        let model = Egnn::new(EgnnConfig::new(8, 3).with_seed(5));
        let (batch, targets) = setup(5);
        let cfg = LossConfig::default();
        let a = vanilla_step(&model, &batch, &targets, &cfg, None);
        let b = checkpointed_step(&model, &batch, &targets, &cfg, None);
        assert!(
            (a.loss - b.loss).abs() < 1e-6 * (1.0 + a.loss.abs()),
            "{} vs {}",
            a.loss,
            b.loss
        );
        assert_eq!(a.grads.len(), b.grads.len());
        for (i, (ga, gb)) in a.grads.iter().zip(b.grads.iter()).enumerate() {
            let tol = 1e-4 * (1.0 + ga.max_abs());
            assert!(ga.allclose(gb, tol), "param {i} grads differ");
        }
    }

    #[test]
    fn checkpointed_matches_vanilla_gradients_gcn() {
        let model = Gcn::new(GcnConfig::new(8, 3));
        let (batch, targets) = setup(4);
        let cfg = LossConfig::default();
        let a = vanilla_step(&model, &batch, &targets, &cfg, None);
        let b = checkpointed_step(&model, &batch, &targets, &cfg, None);
        for (i, (ga, gb)) in a.grads.iter().zip(b.grads.iter()).enumerate() {
            let tol = 1e-4 * (1.0 + ga.max_abs());
            assert!(ga.allclose(gb, tol), "param {i} grads differ");
        }
    }

    #[test]
    fn checkpointing_reduces_peak_activation_memory() {
        // Deep-ish narrow model on a real batch: checkpointing must cut the
        // activation component of the peak.
        let model = Egnn::new(EgnnConfig::new(16, 6));
        let (batch, targets) = setup(8);
        let cfg = LossConfig::default();

        let peak_act = |checkpointed: bool| {
            let tracker = MemoryTracker::new();
            let _ = train_step(&model, &batch, &targets, &cfg, checkpointed, Some(&tracker));
            tracker.at_peak().get(MemoryCategory::Activations)
        };
        let vanilla = peak_act(false);
        let ckpt = peak_act(true);
        assert!(
            (ckpt as f64) < 0.7 * vanilla as f64,
            "checkpointing saved too little: {ckpt} vs {vanilla}"
        );
    }

    #[test]
    fn gradients_cover_all_params_and_are_finite() {
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let (batch, targets) = setup(4);
        let out = vanilla_step(&model, &batch, &targets, &LossConfig::default(), None);
        assert_eq!(out.grads.len(), model.params().len());
        let nonzero = out.grads.iter().filter(|g| g.max_abs() > 0.0).count();
        assert_eq!(nonzero, out.grads.len(), "dead parameters in one step");
        assert!(out.grads.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn sink_step_is_bitwise_identical_to_collected_step() {
        let model = Egnn::new(EgnnConfig::new(8, 3).with_seed(5));
        let (batch, targets) = setup(5);
        let cfg = LossConfig::default();
        for checkpointed in [false, true] {
            let reference = train_step(&model, &batch, &targets, &cfg, checkpointed, None);
            let n = reference.grads.len();
            let mut emitted: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
            let mut sink = |p: usize, g: Tensor| {
                assert!(emitted[p].is_none(), "param {p} emitted twice");
                emitted[p] = Some(g);
            };
            let loss = train_step_with_sink(
                &model,
                &batch,
                &targets,
                &cfg,
                checkpointed,
                None,
                &mut sink,
            );
            assert_eq!(
                loss.to_bits(),
                reference.loss.to_bits(),
                "ckpt={checkpointed}"
            );
            for (p, (want, got)) in reference.grads.iter().zip(emitted.iter()).enumerate() {
                let got = got
                    .as_ref()
                    .unwrap_or_else(|| panic!("param {p} never emitted"));
                let a: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "param {p} grads diverged (ckpt={checkpointed})");
            }
        }
    }

    #[test]
    fn sink_step_tracker_peak_matches_collected_step() {
        let model = Egnn::new(EgnnConfig::new(8, 3).with_seed(5));
        let (batch, targets) = setup(5);
        let cfg = LossConfig::default();
        for checkpointed in [false, true] {
            let tracker_a = MemoryTracker::new();
            let _ = train_step(
                &model,
                &batch,
                &targets,
                &cfg,
                checkpointed,
                Some(&tracker_a),
            );
            let tracker_b = MemoryTracker::new();
            let mut sink = |_: usize, g: Tensor| g.recycle();
            let _ = train_step_with_sink(
                &model,
                &batch,
                &targets,
                &cfg,
                checkpointed,
                Some(&tracker_b),
                &mut sink,
            );
            assert_eq!(
                tracker_a.peak_total(),
                tracker_b.peak_total(),
                "ckpt={checkpointed}"
            );
        }
    }

    #[test]
    fn tracker_balances_to_zero_after_step() {
        let model = Egnn::new(EgnnConfig::new(8, 3));
        let (batch, targets) = setup(4);
        for checkpointed in [false, true] {
            let tracker = MemoryTracker::new();
            let _ = train_step(
                &model,
                &batch,
                &targets,
                &LossConfig::default(),
                checkpointed,
                Some(&tracker),
            );
            let cur = tracker.current();
            assert_eq!(
                cur.get(MemoryCategory::Activations),
                0,
                "ckpt={checkpointed}"
            );
            assert_eq!(cur.get(MemoryCategory::Gradients), 0, "ckpt={checkpointed}");
        }
    }
}
