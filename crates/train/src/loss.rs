//! Training objectives: weighted energy + force regression.
//!
//! Following the paper's task definition (Sec. III-A), the loss combines a
//! graph-level energy term with a node-level force term. Energies are
//! compared **per atom** in normalized space (see
//! [`matgnn_data::Normalizer`]); forces in normalized components.

use matgnn_data::Targets;
use matgnn_graph::GraphBatch;
use matgnn_model::ModelOutput;
use matgnn_tensor::{Tape, Var};

/// The pointwise regression penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    /// Mean squared error.
    Mse,
    /// Mean absolute error (smoothed as `√(x² + ε²)` so the gradient is
    /// defined everywhere).
    Mae,
    /// Pseudo-Huber with transition scale `delta`: quadratic near zero,
    /// linear in the tails — robust to the occasional high-force frame.
    Huber {
        /// Transition scale between quadratic and linear regimes.
        delta: f32,
    },
}

/// Loss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Weight of the graph-level energy term.
    pub energy_weight: f32,
    /// Weight of the node-level force term.
    pub force_weight: f32,
    /// The pointwise penalty.
    pub kind: LossKind,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            energy_weight: 1.0,
            force_weight: 1.0,
            kind: LossKind::Mse,
        }
    }
}

impl LossConfig {
    /// Builds the scalar loss on the tape.
    ///
    /// The model's extensive energy output is divided by each graph's atom
    /// count so it is compared in the normalized per-atom space of the
    /// targets.
    pub fn compute(
        &self,
        tape: &mut Tape,
        output: ModelOutput,
        batch: &GraphBatch,
        targets: &Targets,
    ) -> Var {
        let inv_counts = tape.constant(batch.inv_node_counts());
        let pred_per_atom = tape.mul_col(output.energy, inv_counts);
        let e_target = tape.constant(targets.energy.clone());
        let e_err = tape.sub(pred_per_atom, e_target);
        let e_loss = self.pointwise(tape, e_err);

        let f_target = tape.constant(targets.forces.clone());
        let f_err = tape.sub(output.forces, f_target);
        let f_loss = self.pointwise(tape, f_err);

        let e_term = tape.scale(e_loss, self.energy_weight);
        let f_term = tape.scale(f_loss, self.force_weight);
        tape.add(e_term, f_term)
    }

    fn pointwise(&self, tape: &mut Tape, err: Var) -> Var {
        match self.kind {
            LossKind::Mse => {
                let sq = tape.square(err);
                tape.mean_all(sq)
            }
            LossKind::Mae => {
                const EPS2: f32 = 1e-12;
                let sq = tape.square(err);
                let shifted = tape.add_scalar(sq, EPS2);
                let abs = tape.sqrt(shifted);
                tape.mean_all(abs)
            }
            LossKind::Huber { delta } => {
                // δ²(√(1 + (x/δ)²) − 1)
                let scaled = tape.scale(err, 1.0 / delta);
                let sq = tape.square(scaled);
                let shifted = tape.add_scalar(sq, 1.0);
                let root = tape.sqrt(shifted);
                let minus1 = tape.add_scalar(root, -1.0);
                let huber = tape.scale(minus1, delta * delta);
                tape.mean_all(huber)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
    use matgnn_model::{Egnn, EgnnConfig, GnnModel};
    use matgnn_tensor::Tensor;

    fn setup() -> (GraphBatch, Targets, Egnn) {
        let ds = Dataset::generate_aggregate(6, 3, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        let samples: Vec<&matgnn_data::Sample> = ds.samples().iter().collect();
        let (batch, targets) = matgnn_data::collate(&samples, &norm);
        (batch, targets, Egnn::new(EgnnConfig::new(8, 2)))
    }

    #[test]
    fn loss_is_finite_scalar() {
        let (batch, targets, model) = setup();
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, &batch);
        let loss = LossConfig::default().compute(&mut tape, out, &batch, &targets);
        let v = tape.value(loss).item();
        assert!(v.is_finite() && v >= 0.0, "loss {v}");
    }

    #[test]
    fn perfect_prediction_gives_zero_mse() {
        // Feed the targets back as predictions via constants.
        let (batch, targets, _) = setup();
        let mut tape = Tape::new();
        // Energy output must be extensive: per-atom target × atom count.
        let counts: Vec<f32> = batch.node_counts().iter().map(|&c| c as f32).collect();
        let counts = Tensor::from_vec((batch.n_graphs(), 1), counts).unwrap();
        let extensive = targets.energy.mul(&counts);
        let e = tape.param(extensive);
        let f = tape.param(targets.forces.clone());
        let out = ModelOutput {
            energy: e,
            forces: f,
        };
        let loss = LossConfig::default().compute(&mut tape, out, &batch, &targets);
        assert!(tape.value(loss).item().abs() < 1e-10);
    }

    #[test]
    fn huber_below_mse_for_large_errors() {
        let (batch, targets, model) = setup();
        let eval = |cfg: LossConfig| {
            let mut tape = Tape::new();
            let (_, out) = model.bind_and_forward(&mut tape, &batch);
            let loss = cfg.compute(&mut tape, out, &batch, &targets);
            tape.value(loss).item()
        };
        let mse = eval(LossConfig {
            kind: LossKind::Mse,
            ..Default::default()
        });
        let huber = eval(LossConfig {
            kind: LossKind::Huber { delta: 0.1 },
            ..Default::default()
        });
        // An untrained model has large errors; Huber grows linearly there.
        assert!(huber < mse, "huber {huber} !< mse {mse}");
    }

    #[test]
    fn mae_matches_mean_absolute_error() {
        // Feed a constant-error prediction and check MAE numerically.
        let (batch, targets, _) = setup();
        let mut tape = Tape::new();
        let counts: Vec<f32> = batch.node_counts().iter().map(|&c| c as f32).collect();
        let counts = Tensor::from_vec((batch.n_graphs(), 1), counts).unwrap();
        // Per-atom energy off by exactly +0.5; forces off by −0.25.
        let extensive = targets.energy.add_scalar(0.5).mul(&counts);
        let e = tape.param(extensive);
        let f = tape.param(targets.forces.add_scalar(-0.25));
        let out = ModelOutput {
            energy: e,
            forces: f,
        };
        let cfg = LossConfig {
            kind: LossKind::Mae,
            ..Default::default()
        };
        let loss = cfg.compute(&mut tape, out, &batch, &targets);
        // MAE = 0.5 (energy term) + 0.25 (force term).
        assert!((tape.value(loss).item() - 0.75).abs() < 1e-4);
    }

    #[test]
    fn mae_is_differentiable_at_zero_error() {
        let (batch, targets, _) = setup();
        let mut tape = Tape::new();
        let counts: Vec<f32> = batch.node_counts().iter().map(|&c| c as f32).collect();
        let counts = Tensor::from_vec((batch.n_graphs(), 1), counts).unwrap();
        let e = tape.param(targets.energy.mul(&counts));
        let f = tape.param(targets.forces.clone());
        let out = ModelOutput {
            energy: e,
            forces: f,
        };
        let cfg = LossConfig {
            kind: LossKind::Mae,
            ..Default::default()
        };
        let loss = cfg.compute(&mut tape, out, &batch, &targets);
        let grads = tape.backward(loss);
        assert!(grads.get(e).expect("grad").is_finite());
        assert!(grads.get(f).expect("grad").is_finite());
    }

    #[test]
    fn weights_scale_terms() {
        let (batch, targets, model) = setup();
        let eval = |ew: f32, fw: f32| {
            let mut tape = Tape::new();
            let (_, out) = model.bind_and_forward(&mut tape, &batch);
            let loss = LossConfig {
                energy_weight: ew,
                force_weight: fw,
                kind: LossKind::Mse,
            }
            .compute(&mut tape, out, &batch, &targets);
            tape.value(loss).item()
        };
        let both = eval(1.0, 1.0);
        let e_only = eval(1.0, 0.0);
        let f_only = eval(0.0, 1.0);
        assert!((both - (e_only + f_only)).abs() < 1e-5 * both.max(1.0));
    }

    #[test]
    fn loss_is_differentiable() {
        let (batch, targets, model) = setup();
        let mut tape = Tape::new();
        let (pvars, out) = model.bind_and_forward(&mut tape, &batch);
        let loss = LossConfig {
            kind: LossKind::Huber { delta: 0.5 },
            ..Default::default()
        }
        .compute(&mut tape, out, &batch, &targets);
        let grads = tape.backward(loss);
        let n_with_grad = pvars.iter().filter(|&&v| grads.get(v).is_some()).count();
        assert_eq!(
            n_with_grad,
            pvars.len(),
            "some parameters received no gradient"
        );
    }
}
