//! # matgnn-train
//!
//! The training stack of the `matgnn` reproduction: energy+force losses,
//! SGD/Adam(W) optimizers with byte-accounted state, LLM-style LR schedules
//! (warmup + cosine), gradient clipping, the epoch [`Trainer`], **real
//! activation checkpointing** (segment recompute, identical gradients), and
//! the per-step memory [`profile`] that regenerates the paper's Fig. 6 and
//! Table II.
//!
//! ```no_run
//! use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
//! use matgnn_model::{Egnn, EgnnConfig};
//! use matgnn_train::{TrainConfig, Trainer};
//!
//! let (train, test) = Dataset::generate_split(200, 0.15, 0, &GeneratorConfig::default());
//! let norm = Normalizer::fit(&train);
//! let mut model = Egnn::new(EgnnConfig::with_target_params(20_000, 3));
//! let report = Trainer::new(TrainConfig::default()).fit(&mut model, &train, Some(&test), &norm);
//! println!("final test loss: {:.4}", report.final_loss());
//! ```

#![warn(missing_docs)]

mod checkpoint_state;
mod loss;
mod noise_scale;
mod optimizer;
pub mod profile;
mod schedule;
mod step;
mod supervisor;
mod trainer;

pub use checkpoint_state::{
    crc32, latest_in, prune_checkpoints, TrainCheckpoint, TrainCheckpointError,
};
pub use loss::{LossConfig, LossKind};
pub use noise_scale::{estimate_noise_scale, NoiseScaleEstimate};
pub use optimizer::{adam_update, clip_grad_norm, Adam, AdamHyper, AdamState, Optimizer, Sgd};
pub use profile::{profile_step, profile_step_timed, StepProfile};
pub use schedule::LrSchedule;
pub use step::{
    checkpointed_step, checkpointed_step_with_sink, train_step, train_step_with_sink, vanilla_step,
    vanilla_step_with_sink, StepOutcome,
};
pub use supervisor::{
    params_finite, AnomalyDetector, RollbackBudget, RunHealth, SupervisorConfig, Verdict,
};
pub use trainer::{
    evaluate, evaluate_per_source, EpochStats, EvalMetrics, TrainConfig, TrainReport, Trainer,
};
