//! Learning-rate schedules — one of the "LLM-inspired techniques" the
//! paper's infrastructure question (Q3) asks about: linear warmup followed
//! by cosine decay is the de-facto LLM recipe, applied here to GNNs.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule as a multiplier over the base LR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// Constant multiplier of 1.
    #[default]
    Constant,
    /// Linear warmup over `warmup_steps`, then cosine decay to
    /// `min_factor` at `total_steps`.
    WarmupCosine {
        /// Steps of linear warmup from 0 to 1.
        warmup_steps: usize,
        /// Total steps of the run (decay horizon).
        total_steps: usize,
        /// Final multiplier at and beyond `total_steps`.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The LR multiplier at `step` (0-based).
    pub fn factor(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupCosine {
                warmup_steps,
                total_steps,
                min_factor,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    return (step + 1) as f32 / warmup_steps as f32;
                }
                if total_steps <= warmup_steps || step >= total_steps {
                    return min_factor;
                }
                let progress = (step - warmup_steps) as f32 / (total_steps - warmup_steps) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_factor + (1.0 - min_factor) * cos
            }
        }
    }

    /// The absolute LR at `step` for a base rate.
    pub fn lr(&self, base_lr: f32, step: usize) -> f32 {
        base_lr * self.factor(step)
    }

    /// Supervisor retry multiplier after `consecutive` consecutive
    /// rollbacks: `1.0` for the first retry (a transient anomaly replays
    /// bitwise-identically), then `backoff^(n-1)` — geometric decay that
    /// composes multiplicatively with the schedule's own factor.
    pub fn backoff_factor(backoff: f32, consecutive: u32) -> f32 {
        backoff.powi(consecutive.saturating_sub(1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for step in [0, 5, 1000] {
            assert_eq!(LrSchedule::Constant.factor(step), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 10,
            total_steps: 100,
            min_factor: 0.0,
        };
        assert!((s.factor(0) - 0.1).abs() < 1e-6);
        assert!((s.factor(4) - 0.5).abs() < 1e-6);
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_min() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 10,
            total_steps: 110,
            min_factor: 0.1,
        };
        // Just after warmup: near 1.
        assert!(s.factor(10) > 0.99);
        // Midway: near the midpoint of [min, 1].
        let mid = s.factor(60);
        assert!((mid - 0.55).abs() < 0.02, "mid {mid}");
        // At and beyond the horizon: exactly min.
        assert_eq!(s.factor(110), 0.1);
        assert_eq!(s.factor(10_000), 0.1);
    }

    #[test]
    fn monotone_decay_after_warmup() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 5,
            total_steps: 50,
            min_factor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for step in 5..50 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-6, "not monotone at {step}");
            prev = f;
        }
    }

    #[test]
    fn zero_warmup_supported() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 0,
            total_steps: 10,
            min_factor: 0.0,
        };
        assert!(s.factor(0) > 0.9);
    }

    #[test]
    fn backoff_is_flat_then_geometric() {
        // 0 or 1 consecutive rollbacks: full LR (bitwise-transparent
        // first retry); each further consecutive rollback halves it.
        assert_eq!(LrSchedule::backoff_factor(0.5, 0), 1.0);
        assert_eq!(LrSchedule::backoff_factor(0.5, 1), 1.0);
        assert_eq!(LrSchedule::backoff_factor(0.5, 2), 0.5);
        assert_eq!(LrSchedule::backoff_factor(0.5, 3), 0.25);
        assert!((LrSchedule::backoff_factor(0.1, 3) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn lr_scales_base() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 2,
            total_steps: 10,
            min_factor: 0.5,
        };
        assert!((s.lr(0.02, 0) - 0.01).abs() < 1e-7);
    }
}
