//! Versioned, integrity-checked training checkpoints.
//!
//! A [`TrainCheckpoint`] captures *everything* needed to continue a run
//! bitwise-identically: model parameters, Adam moments and timestep, the
//! LR-schedule position (global step), epoch/step counters, the shuffle
//! seed (per-epoch orders are derived deterministically from it), the
//! running loss accumulator, and the normalizer statistics.
//!
//! # On-disk format
//!
//! ```text
//! "MGTC" | u32 version | u32 n_sections
//! per section:
//!   u32 name_len | name | u32 crc32(payload) | u64 payload_len | payload
//! ```
//!
//! Every section carries a CRC-32 (IEEE) of its payload, so a torn or
//! bit-rotted file is detected at load rather than silently resuming from
//! garbage. Writes are atomic: the blob goes to a `.tmp` sibling, is
//! fsynced, and is renamed over the target (the directory is fsynced too),
//! so a crash mid-write can never leave a half-checkpoint under the final
//! name. [`latest_in`] scans a checkpoint directory and skips unreadable
//! or corrupt entries, falling back to the newest intact one.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use matgnn_data::Normalizer;
use matgnn_model::checkpoint::{params_from_bytes, params_to_bytes, CheckpointError};
use matgnn_model::ParamSet;

use crate::optimizer::AdamState;

const MAGIC: &[u8; 4] = b"MGTC";
const VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Error while reading or writing a [`TrainCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainCheckpointError {
    /// The buffer does not start with the `MGTC` magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A section's stored CRC-32 disagrees with its payload.
    CorruptSection {
        /// Section name.
        name: String,
        /// CRC recorded in the file.
        stored: u32,
        /// CRC computed from the payload.
        computed: u32,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// The embedded parameter blob failed to parse.
    Params(CheckpointError),
    /// A filesystem error.
    Io(String),
}

impl fmt::Display for TrainCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainCheckpointError::BadMagic => write!(f, "not a train checkpoint (bad magic)"),
            TrainCheckpointError::BadVersion(v) => {
                write!(f, "unsupported train checkpoint version {v}")
            }
            TrainCheckpointError::Truncated => write!(f, "train checkpoint truncated"),
            TrainCheckpointError::CorruptSection {
                name,
                stored,
                computed,
            } => write!(
                f,
                "section {name:?} corrupt: stored crc {stored:#010x}, computed {computed:#010x}"
            ),
            TrainCheckpointError::MissingSection(name) => {
                write!(f, "train checkpoint missing section {name:?}")
            }
            TrainCheckpointError::Params(e) => write!(f, "parameter section: {e}"),
            TrainCheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for TrainCheckpointError {}

impl From<CheckpointError> for TrainCheckpointError {
    fn from(e: CheckpointError) -> Self {
        TrainCheckpointError::Params(e)
    }
}

/// Full training state at an optimizer-step boundary.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Epoch in progress (0-based).
    pub epoch: u64,
    /// Optimizer steps completed within `epoch`.
    pub step_in_epoch: u64,
    /// Optimizer steps completed overall — the LR-schedule position.
    pub global_step: u64,
    /// Base shuffle seed; epoch orders derive deterministically from it.
    pub seed: u64,
    /// Sum of per-step losses accumulated so far in `epoch`.
    pub loss_acc: f64,
    /// Number of steps accumulated into `loss_acc`.
    pub loss_count: u64,
    /// Model parameters.
    pub params: ParamSet,
    /// Flattened Adam moments and timestep.
    pub adam: AdamState,
    /// Normalizer statistics the run was started with.
    pub normalizer: Normalizer,
}

fn put_section(buf: &mut BytesMut, name: &str, payload: &[u8]) {
    buf.put_u32(name.len() as u32);
    buf.put_slice(name.as_bytes());
    buf.put_u32(crc32(payload));
    buf.put_u64(payload.len() as u64);
    buf.put_slice(payload);
}

fn need(buf: &Bytes, n: usize) -> Result<(), TrainCheckpointError> {
    if buf.remaining() < n {
        Err(TrainCheckpointError::Truncated)
    } else {
        Ok(())
    }
}

fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &v in data {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

fn f32s_from_bytes(data: &[u8]) -> Result<Vec<f32>, TrainCheckpointError> {
    if !data.len().is_multiple_of(4) {
        return Err(TrainCheckpointError::Truncated);
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| f32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

impl TrainCheckpoint {
    /// Serializes to the `MGTC` container with per-section CRCs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = BytesMut::new();
        meta.put_u64(self.epoch);
        meta.put_u64(self.step_in_epoch);
        meta.put_u64(self.global_step);
        meta.put_u64(self.seed);
        meta.put_u64(self.adam.t);
        meta.put_u64(self.loss_count);
        meta.put_f64(self.loss_acc);

        let mut norm = BytesMut::new();
        norm.put_f64(self.normalizer.energy_mean);
        norm.put_f64(self.normalizer.energy_std);
        norm.put_f64(self.normalizer.force_std);
        for &o in &self.normalizer.source_offset {
            norm.put_f64(o);
        }

        let sections: [(&str, Vec<u8>); 5] = [
            ("meta", meta.freeze().to_vec()),
            ("params", params_to_bytes(&self.params).to_vec()),
            ("adam_m", f32s_to_bytes(&self.adam.m)),
            ("adam_v", f32s_to_bytes(&self.adam.v)),
            ("normalizer", norm.freeze().to_vec()),
        ];

        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32(VERSION);
        buf.put_u32(sections.len() as u32);
        for (name, payload) in &sections {
            put_section(&mut buf, name, payload);
        }
        buf.freeze().to_vec()
    }

    /// Parses and integrity-checks a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainCheckpointError`] on any malformed, truncated, or
    /// CRC-failing input; never panics on untrusted bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TrainCheckpointError> {
        let mut buf = Bytes::copy_from_slice(data);
        need(&buf, 12)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TrainCheckpointError::BadMagic);
        }
        let version = buf.get_u32();
        if version != VERSION {
            return Err(TrainCheckpointError::BadVersion(version));
        }
        let n_sections = buf.get_u32() as usize;

        let mut meta = None;
        let mut params = None;
        let mut adam_m = None;
        let mut adam_v = None;
        let mut normalizer = None;
        for _ in 0..n_sections {
            need(&buf, 4)?;
            let name_len = buf.get_u32() as usize;
            need(&buf, name_len)?;
            let mut name_bytes = vec![0u8; name_len];
            buf.copy_to_slice(&mut name_bytes);
            let name = String::from_utf8_lossy(&name_bytes).into_owned();
            need(&buf, 12)?;
            let stored = buf.get_u32();
            let payload_len = buf.get_u64() as usize;
            need(&buf, payload_len)?;
            let mut payload = vec![0u8; payload_len];
            buf.copy_to_slice(&mut payload);
            let computed = crc32(&payload);
            if computed != stored {
                return Err(TrainCheckpointError::CorruptSection {
                    name,
                    stored,
                    computed,
                });
            }
            match name.as_str() {
                "meta" => meta = Some(payload),
                "params" => params = Some(payload),
                "adam_m" => adam_m = Some(payload),
                "adam_v" => adam_v = Some(payload),
                "normalizer" => normalizer = Some(payload),
                _ => {} // unknown sections are skipped for forward compat
            }
        }

        let meta = meta.ok_or(TrainCheckpointError::MissingSection("meta"))?;
        if meta.len() != 7 * 8 {
            return Err(TrainCheckpointError::Truncated);
        }
        let mut meta = Bytes::copy_from_slice(&meta);
        let epoch = meta.get_u64();
        let step_in_epoch = meta.get_u64();
        let global_step = meta.get_u64();
        let seed = meta.get_u64();
        let adam_t = meta.get_u64();
        let loss_count = meta.get_u64();
        let loss_acc = meta.get_f64();

        let params_blob = params.ok_or(TrainCheckpointError::MissingSection("params"))?;
        let params = params_from_bytes(&params_blob)?;
        let m = f32s_from_bytes(&adam_m.ok_or(TrainCheckpointError::MissingSection("adam_m"))?)?;
        let v = f32s_from_bytes(&adam_v.ok_or(TrainCheckpointError::MissingSection("adam_v"))?)?;

        let norm = normalizer.ok_or(TrainCheckpointError::MissingSection("normalizer"))?;
        if norm.len() != 8 * 8 {
            return Err(TrainCheckpointError::Truncated);
        }
        let mut norm = Bytes::copy_from_slice(&norm);
        let energy_mean = norm.get_f64();
        let energy_std = norm.get_f64();
        let force_std = norm.get_f64();
        let mut source_offset = [0.0f64; 5];
        for o in &mut source_offset {
            *o = norm.get_f64();
        }

        Ok(TrainCheckpoint {
            epoch,
            step_in_epoch,
            global_step,
            seed,
            loss_acc,
            loss_count,
            params,
            adam: AdamState { m, v, t: adam_t },
            normalizer: Normalizer {
                energy_mean,
                energy_std,
                force_std,
                source_offset,
            },
        })
    }

    /// Atomically writes the checkpoint: serialize to `<path>.tmp`, fsync,
    /// rename over `path`, fsync the directory. A crash at any point
    /// leaves either the old checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`TrainCheckpointError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TrainCheckpointError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| TrainCheckpointError::Io(e.to_string());
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(&self.to_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(io)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                // Directory fsync is advisory on some filesystems.
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainCheckpointError`] on filesystem or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TrainCheckpointError> {
        let data = fs::read(path).map_err(|e| TrainCheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }

    /// The canonical file name for a checkpoint at `global_step`.
    pub fn file_name(global_step: u64) -> String {
        format!("step-{global_step:08}.ckpt")
    }
}

/// Finds the newest *intact* checkpoint in `dir`: candidates are
/// `step-*.ckpt` files ordered by step; unreadable or corrupt ones are
/// skipped (a torn write of the latest must not block recovery from the
/// previous one). Returns `None` when the directory holds no loadable
/// checkpoint (or does not exist).
pub fn latest_in(dir: impl AsRef<Path>) -> Option<(PathBuf, TrainCheckpoint)> {
    let mut candidates: Vec<(u64, PathBuf)> = fs::read_dir(dir.as_ref())
        .ok()?
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let name = path.file_name()?.to_str()?;
            let step = name
                .strip_prefix("step-")?
                .strip_suffix(".ckpt")?
                .parse::<u64>()
                .ok()?;
            Some((step, path))
        })
        .collect();
    candidates.sort_by_key(|(step, _)| std::cmp::Reverse(*step));
    for (_, path) in candidates {
        if let Ok(ckpt) = TrainCheckpoint::load(&path) {
            return Some((path, ckpt));
        }
    }
    None
}

/// Deletes the oldest `step-*.ckpt` files in `dir` until at most `keep`
/// remain. `anchor_step` — the supervisor's rollback anchor — is never
/// pruned even when it is among the oldest (and does not count against
/// `keep`, so retention cannot silently shrink below the requested
/// depth while an anchor is pinned). `keep == 0` disables pruning.
///// Deletion failures are ignored: pruning is best-effort hygiene and
/// must never fail a training run.
pub fn prune_checkpoints(dir: impl AsRef<Path>, keep: usize, anchor_step: Option<u64>) {
    if keep == 0 {
        return;
    }
    let Ok(entries) = fs::read_dir(dir.as_ref()) else {
        return;
    };
    let mut steps: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let name = path.file_name()?.to_str()?;
            let step = name
                .strip_prefix("step-")?
                .strip_suffix(".ckpt")?
                .parse::<u64>()
                .ok()?;
            Some((step, path))
        })
        .filter(|(step, _)| anchor_step != Some(*step))
        .collect();
    if steps.len() <= keep {
        return;
    }
    // Oldest first; everything before the newest `keep` goes.
    steps.sort_by_key(|(step, _)| *step);
    let excess = steps.len() - keep;
    for (_, path) in steps.into_iter().take(excess) {
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_tensor::Tensor;

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut params = ParamSet::new();
        params.push(
            "w",
            Tensor::from_vec(3usize, vec![0.25, -1.5, 3.75]).unwrap(),
        );
        params.push("b", Tensor::from_vec(2usize, vec![0.125, 9.0]).unwrap());
        TrainCheckpoint {
            epoch: 2,
            step_in_epoch: 7,
            global_step: 23,
            seed: 0xC0FFEE,
            loss_acc: 1.625,
            loss_count: 7,
            params,
            adam: AdamState {
                m: vec![0.1, 0.2, 0.3, 0.4, 0.5],
                v: vec![1.0; 5],
                t: 23,
            },
            normalizer: Normalizer {
                energy_mean: -1.25,
                energy_std: 2.5,
                force_std: 0.75,
                source_offset: [0.1, 0.2, 0.3, 0.4, 0.5],
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_exact() {
        let ckpt = sample_checkpoint();
        let restored = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored.epoch, ckpt.epoch);
        assert_eq!(restored.step_in_epoch, ckpt.step_in_epoch);
        assert_eq!(restored.global_step, ckpt.global_step);
        assert_eq!(restored.seed, ckpt.seed);
        assert_eq!(restored.loss_acc.to_bits(), ckpt.loss_acc.to_bits());
        assert_eq!(restored.loss_count, ckpt.loss_count);
        assert_eq!(restored.adam, ckpt.adam);
        for (a, b) in restored.params.iter().zip(ckpt.params.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.tensor.data(), b.tensor.data());
        }
        assert_eq!(restored.normalizer.energy_mean, ckpt.normalizer.energy_mean);
        assert_eq!(
            restored.normalizer.source_offset,
            ckpt.normalizer.source_offset
        );
    }

    #[test]
    fn bit_flip_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        // Flip one bit in every byte position past the header and verify
        // nothing slips through as a silent success.
        for pos in [20, bytes.len() / 2, bytes.len() - 1] {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            assert!(
                TrainCheckpoint::from_bytes(&evil).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [0, 3, 11, bytes.len() / 3, bytes.len() - 1] {
            assert!(
                TrainCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        assert_eq!(
            TrainCheckpoint::from_bytes(b"XXXX\0\0\0\x01\0\0\0\0").unwrap_err(),
            TrainCheckpointError::BadMagic
        );
        bytes[4..8].copy_from_slice(&9u32.to_be_bytes());
        assert_eq!(
            TrainCheckpoint::from_bytes(&bytes).unwrap_err(),
            TrainCheckpointError::BadVersion(9)
        );
    }

    #[test]
    fn atomic_save_and_latest_selection() {
        let dir = std::env::temp_dir().join(format!("matgnn_tc_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut ckpt = sample_checkpoint();
        ckpt.global_step = 5;
        ckpt.save(dir.join(TrainCheckpoint::file_name(5))).unwrap();
        ckpt.global_step = 9;
        ckpt.save(dir.join(TrainCheckpoint::file_name(9))).unwrap();
        // The newest intact checkpoint wins.
        let (path, latest) = latest_in(&dir).expect("checkpoints present");
        assert_eq!(latest.global_step, 9);
        assert!(path.ends_with("step-00000009.ckpt"));
        // Corrupt the newest: recovery falls back to the previous one.
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&path, raw).unwrap();
        let (_, fallback) = latest_in(&dir).expect("older checkpoint still intact");
        assert_eq!(fallback.global_step, 5);
        // No tmp files left behind.
        assert!(fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| { e.path().extension().map(|x| x != "tmp").unwrap_or(true) }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_in_missing_dir_is_none() {
        assert!(latest_in("/nonexistent/matgnn-ckpts").is_none());
    }

    #[test]
    fn pruning_keeps_newest_and_pins_the_anchor() {
        let dir = std::env::temp_dir().join(format!("matgnn_prune_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut ckpt = sample_checkpoint();
        for step in [1u64, 2, 3, 5, 8] {
            ckpt.global_step = step;
            ckpt.save(dir.join(TrainCheckpoint::file_name(step)))
                .unwrap();
        }
        let present = |dir: &std::path::Path| -> Vec<u64> {
            let mut steps: Vec<u64> = fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter_map(|e| {
                    e.path()
                        .file_name()?
                        .to_str()?
                        .strip_prefix("step-")?
                        .strip_suffix(".ckpt")?
                        .parse()
                        .ok()
                })
                .collect();
            steps.sort_unstable();
            steps
        };

        // keep == 0 disables pruning entirely.
        prune_checkpoints(&dir, 0, None);
        assert_eq!(present(&dir), vec![1, 2, 3, 5, 8]);

        // Anchor step 2 is exempt: it survives even though it is among
        // the oldest, and it does not count against keep=2.
        prune_checkpoints(&dir, 2, Some(2));
        assert_eq!(present(&dir), vec![2, 5, 8]);

        // Without an anchor, only the newest `keep` remain.
        prune_checkpoints(&dir, 1, None);
        assert_eq!(present(&dir), vec![8]);

        // Already at or below the target: a no-op.
        prune_checkpoints(&dir, 4, None);
        assert_eq!(present(&dir), vec![8]);

        // Missing directory: best-effort silence, not a panic.
        prune_checkpoints(dir.join("nope"), 3, Some(1));
        fs::remove_dir_all(&dir).ok();
    }
}
