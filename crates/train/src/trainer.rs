//! The training loop: epochs over shuffled mini-batches with Adam, LR
//! scheduling, gradient clipping, and held-out evaluation — the scaled-down
//! equivalent of the paper's HydraGNN training protocol (10 epochs, fixed
//! test set, Sec. III-B).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use matgnn_data::{BatchIterator, Dataset, Normalizer, PrefetchIterator, SourceKind, Targets};
use matgnn_graph::GraphBatch;
use matgnn_model::GnnModel;
use matgnn_tensor::Tape;

use crate::{
    clip_grad_norm, latest_in, params_finite, prune_checkpoints, train_step, Adam, AdamHyper,
    AnomalyDetector, LossConfig, LrSchedule, Optimizer, RollbackBudget, RunHealth,
    SupervisorConfig, TrainCheckpoint, Verdict,
};

/// Configuration of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Graphs per mini-batch.
    pub batch_size: usize,
    /// Base learning rate.
    pub base_lr: f32,
    /// LR schedule (multiplier over `base_lr`).
    pub schedule: LrSchedule,
    /// Global-norm gradient clipping threshold (`None` disables).
    pub grad_clip: Option<f32>,
    /// The training objective.
    pub loss: LossConfig,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Shuffle seed (epoch index is mixed in).
    pub seed: u64,
    /// Whether to train with activation checkpointing.
    pub checkpointing: bool,
    /// Micro-batches to accumulate before each optimizer step (≥ 1).
    /// Emulates a larger effective batch without the memory — one of the
    /// standard LLM-scale techniques (paper research question Q3).
    pub grad_accum_steps: usize,
    /// Stop after this many epochs without test-loss improvement
    /// (requires a test set; `None` disables).
    pub early_stop_patience: Option<usize>,
    /// Batches collated ahead of the training step on a background thread
    /// (0 = synchronous loading, the historical path). Any depth yields a
    /// bitwise-identical trajectory; nonzero depths only overlap collation
    /// with compute.
    pub prefetch_depth: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 8,
            base_lr: 3e-3,
            schedule: LrSchedule::Constant,
            grad_clip: Some(5.0),
            loss: LossConfig::default(),
            adam: AdamHyper::default(),
            seed: 0,
            checkpointing: false,
            grad_accum_steps: 1,
            early_stop_patience: None,
            prefetch_depth: 0,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Test loss after the epoch, if a test set was given.
    pub test_loss: Option<f64>,
}

/// Evaluation metrics on a dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Mean loss (normalized space — the paper's "test loss" axis).
    pub loss: f64,
    /// Mean absolute per-atom energy error in eV/atom (denormalized).
    pub energy_mae: f64,
    /// Mean absolute force-component error in eV/Å (denormalized).
    pub force_mae: f64,
}

/// The outcome of [`Trainer::fit`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Stats per epoch, in order.
    pub epochs: Vec<EpochStats>,
    /// Final held-out metrics (if a test set was given).
    pub final_eval: Option<EvalMetrics>,
    /// Total optimization steps taken.
    pub steps: usize,
    /// Wall-clock training time.
    pub wall: Duration,
    /// Whether early stopping ended the run before `epochs`.
    pub early_stopped: bool,
    /// Final supervision verdict: [`RunHealth::Healthy`] for
    /// unsupervised runs and supervised runs that finished (recovered
    /// or not), [`RunHealth::Failed`] when the rollback budget was
    /// exhausted and the run was abandoned.
    pub health: RunHealth,
    /// Total supervised rollbacks performed over the run.
    pub rollbacks: u32,
}

impl TrainReport {
    /// The last recorded test loss, or the last train loss as fallback.
    pub fn final_loss(&self) -> f64 {
        self.final_eval
            .map(|e| e.loss)
            .or_else(|| self.epochs.last().and_then(|e| e.test_loss))
            .or_else(|| self.epochs.last().map(|e| e.train_loss))
            .unwrap_or(f64::NAN)
    }
}

/// Appends this run's scaling coordinates to the ledger named by
/// `MATGNN_LEDGER`, if set. One env lookup at run end — nothing on any
/// training hot path, and (like all telemetry) no effect on the
/// trajectory. `world` is the data-parallel width the report covers.
pub(crate) fn ledger_append<M: GnnModel + ?Sized>(
    kind: &str,
    model: &M,
    train: &Dataset,
    world: usize,
    report: &TrainReport,
) {
    use matgnn_telemetry::ledger;
    if !std::env::var(ledger::ENV_VAR).is_ok_and(|v| !v.is_empty()) {
        return;
    }
    let params = model.params().n_scalars() as u64;
    let atoms_per_epoch: u64 = train.samples().iter().map(|s| s.n_nodes() as u64).sum();
    let atoms_seen = atoms_per_epoch * report.epochs.len() as u64;
    let mut rec = ledger::RunRecord::new(kind, params, atoms_seen, world);
    rec.steps = report.steps as u64;
    rec.wall_s = report.wall.as_secs_f64();
    rec.loss = report.final_loss();
    rec.curve = report
        .epochs
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let flops = ledger::flop_estimate(params, atoms_per_epoch * (i as u64 + 1));
            (flops, e.test_loss.unwrap_or(e.train_loss))
        })
        .collect();
    ledger::append_from_env(&rec);
}

/// Drives training of a [`GnnModel`].
///
/// # Examples
///
/// ```no_run
/// use matgnn_data::{Dataset, GeneratorConfig, Normalizer};
/// use matgnn_model::{Egnn, EgnnConfig};
/// use matgnn_train::{TrainConfig, Trainer};
///
/// let (train, test) = Dataset::generate_split(100, 0.2, 7, &GeneratorConfig::default());
/// let norm = Normalizer::fit(&train);
/// let mut model = Egnn::new(EgnnConfig::new(16, 3));
/// let report = Trainer::new(TrainConfig { epochs: 4, ..Default::default() })
///     .fit(&mut model, &train, Some(&test), &norm);
/// println!("test loss {}", report.final_loss());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    config: TrainConfig,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    supervise: Option<SupervisorConfig>,
    keep_checkpoints: usize,
}

/// Cross-attempt supervision state threaded through supervised
/// [`Trainer::fit`] retries.
struct TrainerSupervision {
    detector: AnomalyDetector,
    budget: RollbackBudget,
    /// Global step of the checkpoint the last rollback restored; pinned
    /// against retention pruning so the rollback target stays on disk.
    anchor: Option<u64>,
    /// Steps whose spike verdict already forced one rollback: replay is
    /// bitwise-deterministic and the loss precedes the update, so a
    /// spike that recurs identically is the true trajectory and gets
    /// accepted instead of burning the budget in a rollback livelock.
    spike_rollbacks: std::collections::HashSet<u64>,
}

/// How one supervised training attempt ended.
enum FitExit {
    /// Ran to completion (or early-stopped).
    Completed,
    /// Aborted on an anomalous step; the supervisor should roll back.
    Anomaly,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            checkpoint_dir: None,
            checkpoint_every: 0,
            resume: false,
            supervise: None,
            keep_checkpoints: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Enables durable training state: a versioned, CRC-protected
    /// [`TrainCheckpoint`] is written atomically to `dir` every
    /// `every_steps` optimizer steps (0 = only at epoch boundaries) and
    /// at the end of every epoch.
    pub fn with_checkpointing(mut self, dir: impl Into<PathBuf>, every_steps: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every_steps;
        self
    }

    /// Makes [`fit`](Self::fit) first restore the newest intact
    /// checkpoint in the checkpoint directory (no-op when none exists).
    /// A resumed run replays the exact shuffle order and optimizer
    /// trajectory, so its loss curve is bitwise-identical to the
    /// uninterrupted one. Early-stopping patience counters are **not**
    /// checkpointed and restart on resume.
    pub fn resume_latest(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Enables run supervision: after every optimizer step the loss and
    /// post-step parameters are checked for NaN/Inf and loss spikes
    /// (see [`AnomalyDetector`]); an anomalous step is rolled back to
    /// the newest checkpoint (or the parameters `fit` was entered with,
    /// when no checkpoint exists yet) and retried — at full LR first,
    /// then with the LR backed off on repeated consecutive rollbacks —
    /// until `cfg.max_rollbacks` is exhausted and the run is declared
    /// [`RunHealth::Failed`].
    pub fn with_supervision(mut self, cfg: SupervisorConfig) -> Self {
        self.supervise = Some(cfg);
        self
    }

    /// Caps the checkpoint directory at the `n` newest checkpoints
    /// (0 = keep everything). The supervised rollback anchor is never
    /// pruned. See [`prune_checkpoints`].
    pub fn keep_checkpoints(mut self, n: usize) -> Self {
        self.keep_checkpoints = n;
        self
    }

    /// Trains `model` on `train`, optionally evaluating on `test` after
    /// every epoch.
    ///
    /// With [`with_supervision`](Self::with_supervision) this wraps the
    /// attempt in the detect→decide→recover loop; a report from a run
    /// that rolled back covers only the final (post-rollback) attempt's
    /// epochs, mirroring how a resumed run reports only the epochs it
    /// executed.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit<M: GnnModel>(
        &self,
        model: &mut M,
        train: &Dataset,
        test: Option<&Dataset>,
        normalizer: &Normalizer,
    ) -> TrainReport {
        let report = self.fit_supervised(model, train, test, normalizer);
        ledger_append("train", model, train, 1, &report);
        report
    }

    /// [`fit`](Self::fit) without the run-ledger hook: the supervision
    /// loop around [`fit_once`](Self::fit_once).
    fn fit_supervised<M: GnnModel>(
        &self,
        model: &mut M,
        train: &Dataset,
        test: Option<&Dataset>,
        normalizer: &Normalizer,
    ) -> TrainReport {
        let Some(sup_cfg) = self.supervise else {
            return self.fit_once(model, train, test, normalizer, None).0;
        };
        // The rollback target before any checkpoint exists: the
        // parameters at entry (Adam state is implicitly fresh — each
        // attempt recreates the optimizer).
        let initial = model.params().flatten();
        let mut sup = TrainerSupervision {
            detector: AnomalyDetector::new(&sup_cfg),
            budget: RollbackBudget::new(sup_cfg),
            anchor: None,
            spike_rollbacks: std::collections::HashSet::new(),
        };
        let mut attempt = self.clone();
        loop {
            let (mut report, exit) =
                attempt.fit_once(model, train, test, normalizer, Some(&mut sup));
            report.rollbacks = sup.budget.total_rollbacks();
            match exit {
                FitExit::Completed => return report,
                FitExit::Anomaly => {
                    let health = sup.budget.record_anomaly();
                    if health == RunHealth::Failed {
                        matgnn_telemetry::health_event(
                            "supervisor.failed",
                            &format!(
                                "rollback budget exhausted after {} rollbacks; abandoning the run",
                                sup.budget.total_rollbacks().saturating_sub(1)
                            ),
                        );
                        report.health = RunHealth::Failed;
                        report.rollbacks = sup.budget.total_rollbacks().saturating_sub(1);
                        return report;
                    }
                    match attempt.checkpoint_dir.as_deref().and_then(latest_in) {
                        Some((_, ckpt)) => {
                            sup.anchor = Some(ckpt.global_step);
                            // `fit_once` restores the newest checkpoint
                            // itself on the retry.
                            attempt.resume = true;
                            matgnn_telemetry::health_event(
                                "supervisor.rollback",
                                &format!(
                                    "restored step {} checkpoint (rollback {} of {})",
                                    ckpt.global_step,
                                    sup.budget.total_rollbacks(),
                                    sup_cfg.max_rollbacks
                                ),
                            );
                        }
                        None => {
                            model.params_mut().unflatten_from(&initial);
                            attempt.resume = false;
                            matgnn_telemetry::health_event(
                                "supervisor.rollback",
                                &format!(
                                    "no checkpoint on disk; restarted from initial state \
                                     (rollback {} of {})",
                                    sup.budget.total_rollbacks(),
                                    sup_cfg.max_rollbacks
                                ),
                            );
                        }
                    }
                    matgnn_telemetry::counter_add("supervisor.rollback", 1);
                    sup.budget.record_rolled_back();
                }
            }
        }
    }

    /// One training attempt (the whole run, when unsupervised).
    fn fit_once<M: GnnModel>(
        &self,
        model: &mut M,
        train: &Dataset,
        test: Option<&Dataset>,
        normalizer: &Normalizer,
        mut sup: Option<&mut TrainerSupervision>,
    ) -> (TrainReport, FitExit) {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let cfg = &self.config;
        let accum = cfg.grad_accum_steps.max(1);
        // Retry attempts after repeated consecutive rollbacks run the
        // whole attempt at a backed-off LR; the first retry's factor is
        // 1.0 so a transient anomaly recovers bitwise-identically.
        let lr_factor = sup.as_deref().map_or(1.0, |s| s.budget.retry_lr_factor());
        let start = Instant::now();
        let mut optimizer = Adam::new(model.params(), cfg.adam, None);
        let mut epochs = Vec::with_capacity(cfg.epochs);
        let mut step = 0usize;
        let mut best_test = f64::INFINITY;
        let mut since_best = 0usize;
        let mut early_stopped = false;

        // Restore the newest durable state. A mid-epoch checkpoint lands
        // on an optimizer-step boundary, so resuming means replaying the
        // epoch's shuffle order and skipping the batches already consumed
        // — the remaining trajectory is bitwise-identical to the
        // uninterrupted run.
        let mut start_epoch = 0usize;
        let mut resume_skip = 0usize;
        let mut resume_loss = 0.0f64;
        let mut resume_step_in_epoch = 0usize;
        if self.resume {
            if let Some(dir) = &self.checkpoint_dir {
                if let Some((_, ckpt)) = latest_in(dir) {
                    model.params_mut().unflatten_from(&ckpt.params.flatten());
                    optimizer.restore_state(&ckpt.adam);
                    step = ckpt.global_step as usize;
                    start_epoch = ckpt.epoch as usize;
                    resume_skip = ckpt.loss_count as usize;
                    resume_loss = ckpt.loss_acc;
                    resume_step_in_epoch = ckpt.step_in_epoch as usize;
                }
            }
        }
        let steps_at_entry = step;

        for epoch in start_epoch..cfg.epochs {
            let resuming = epoch == start_epoch && resume_skip > 0;
            let skip_batches = if resuming { resume_skip } else { 0 };
            let mut epoch_loss = if resuming { resume_loss } else { 0.0 };
            let mut n_batches = skip_batches;
            let epoch_start_step = step
                - if epoch == start_epoch {
                    resume_step_in_epoch
                } else {
                    0
                };
            let shuffle = cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9);
            let mut accum_buf: Option<Vec<matgnn_tensor::Tensor>> = None;
            let mut micro = 0usize;
            let flush = |buf: &mut Option<Vec<matgnn_tensor::Tensor>>,
                         micro: &mut usize,
                         model: &mut M,
                         optimizer: &mut Adam,
                         step: &mut usize| {
                let Some(mut grads) = buf.take() else { return };
                let _span = matgnn_telemetry::span("optimizer");
                if *micro > 1 {
                    let inv = 1.0 / *micro as f32;
                    for g in &mut grads {
                        g.scale_in_place(inv);
                    }
                }
                if let Some(max_norm) = cfg.grad_clip {
                    let _ = clip_grad_norm(&mut grads, max_norm);
                }
                let lr = cfg.schedule.lr(cfg.base_lr, *step) * lr_factor;
                optimizer.step(model.params_mut(), &grads, lr);
                // The gradients are fully consumed by the update; hand
                // their buffers back so the next backward pass reuses them.
                for g in grads {
                    g.recycle();
                }
                *step += 1;
                *micro = 0;
                matgnn_telemetry::gauge_set("train.lr", lr as f64);
                matgnn_telemetry::counter_add("train.steps", 1);
                if matgnn_telemetry::enabled() {
                    // Absorb the stat islands and emit one step-tagged
                    // metrics line per optimizer step.
                    matgnn_tensor::recycler::publish_telemetry();
                    matgnn_tensor::pool::publish_telemetry();
                    matgnn_tensor::simd::publish_telemetry();
                    matgnn_telemetry::flush_metrics();
                }
            };
            // Depth 0 loads synchronously on this thread; otherwise a
            // background producer runs the identical iterator ahead of the
            // step, so the sequence of batches is the same either way.
            let batches: Box<dyn Iterator<Item = (GraphBatch, Targets)>> = if cfg.prefetch_depth > 0
            {
                Box::new(PrefetchIterator::with_skip(
                    train,
                    cfg.batch_size,
                    Some(shuffle),
                    *normalizer,
                    cfg.prefetch_depth,
                    skip_batches,
                ))
            } else {
                Box::new(
                    BatchIterator::new(train, cfg.batch_size, Some(shuffle), *normalizer)
                        .skip(skip_batches),
                )
            };
            let mut batches = batches;
            loop {
                matgnn_telemetry::set_step(step as u64);
                let item = {
                    let _span = matgnn_telemetry::span("data.load");
                    batches.next()
                };
                let Some((batch, targets)) = item else { break };
                let _step_span = matgnn_telemetry::span("step");
                let outcome =
                    train_step(model, &batch, &targets, &cfg.loss, cfg.checkpointing, None);
                matgnn_telemetry::gauge_set("train.loss", outcome.loss);
                epoch_loss += outcome.loss;
                n_batches += 1;
                match &mut accum_buf {
                    None => accum_buf = Some(outcome.grads),
                    Some(buf) => {
                        for (b, g) in buf.iter_mut().zip(outcome.grads) {
                            b.axpy(1.0, &g);
                            g.recycle();
                        }
                    }
                }
                micro += 1;
                if micro == accum {
                    flush(&mut accum_buf, &mut micro, model, &mut optimizer, &mut step);
                    // Detect → decide: post-step numerical health. An
                    // anomalous step aborts the attempt *before* it can
                    // be checkpointed, so the newest checkpoint on disk
                    // is always a healthy rollback target.
                    if let Some(s) = sup.as_deref_mut() {
                        let verdict = s.detector.observe(step as u64, outcome.loss);
                        // A spiked step gets exactly one rollback;
                        // recurring identically on replay, it is
                        // accepted as genuine.
                        let spike =
                            verdict == Verdict::Spike && s.spike_rollbacks.insert(step as u64);
                        let anomalous = verdict == Verdict::NonFinite
                            || spike
                            || !params_finite(model.params().flatten().data());
                        if anomalous {
                            matgnn_telemetry::health_event(
                                "supervisor.anomaly",
                                &format!("step {step}: verdict {verdict:?}, loss {}", outcome.loss),
                            );
                            matgnn_telemetry::counter_add("supervisor.anomaly", 1);
                            matgnn_telemetry::clear_step();
                            return (
                                TrainReport {
                                    epochs,
                                    final_eval: None,
                                    steps: step - steps_at_entry,
                                    wall: start.elapsed(),
                                    early_stopped: false,
                                    health: RunHealth::Anomalous,
                                    rollbacks: s.budget.total_rollbacks(),
                                },
                                FitExit::Anomaly,
                            );
                        }
                        s.budget.record_healthy_step();
                    }
                    // Periodic checkpoints land on optimizer-step
                    // boundaries, where no accumulation is in flight.
                    if let Some(dir) = &self.checkpoint_dir {
                        if self.checkpoint_every > 0 && step.is_multiple_of(self.checkpoint_every) {
                            save_checkpoint(
                                dir,
                                epoch,
                                step - epoch_start_step,
                                step,
                                cfg.seed,
                                epoch_loss,
                                n_batches,
                                model,
                                &optimizer,
                                normalizer,
                            );
                            if self.keep_checkpoints > 0 {
                                prune_checkpoints(
                                    dir,
                                    self.keep_checkpoints,
                                    sup.as_deref().and_then(|s| s.anchor),
                                );
                            }
                        }
                    }
                }
            }
            // Flush a trailing partial accumulation at epoch end.
            flush(&mut accum_buf, &mut micro, model, &mut optimizer, &mut step);

            let train_loss = epoch_loss / n_batches.max(1) as f64;
            let test_loss = test.map(|t| {
                let _span = matgnn_telemetry::span("evaluate");
                evaluate(model, t, normalizer, &cfg.loss, cfg.batch_size).loss
            });
            epochs.push(EpochStats {
                epoch,
                train_loss,
                test_loss,
            });

            // Epoch-boundary checkpoint: the next run starts cleanly at
            // `epoch + 1` (same global step ⇒ same file name as a
            // just-written periodic checkpoint, atomically replaced).
            if let Some(dir) = &self.checkpoint_dir {
                save_checkpoint(
                    dir,
                    epoch + 1,
                    0,
                    step,
                    cfg.seed,
                    0.0,
                    0,
                    model,
                    &optimizer,
                    normalizer,
                );
                if self.keep_checkpoints > 0 {
                    prune_checkpoints(
                        dir,
                        self.keep_checkpoints,
                        sup.as_deref().and_then(|s| s.anchor),
                    );
                }
            }

            if let (Some(patience), Some(tl)) = (cfg.early_stop_patience, test_loss) {
                if tl + 1e-12 < best_test {
                    best_test = tl;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }

        matgnn_telemetry::clear_step();
        let final_eval = test.map(|t| evaluate(model, t, normalizer, &cfg.loss, cfg.batch_size));
        (
            TrainReport {
                epochs,
                final_eval,
                steps: step - steps_at_entry,
                wall: start.elapsed(),
                early_stopped,
                health: RunHealth::Healthy,
                rollbacks: sup.as_deref().map_or(0, |s| s.budget.total_rollbacks()),
            },
            FitExit::Completed,
        )
    }
}

/// Writes one durable checkpoint (best-effort: training never stops
/// because a checkpoint write failed).
#[allow(clippy::too_many_arguments)]
fn save_checkpoint<M: GnnModel>(
    dir: &std::path::Path,
    epoch: usize,
    step_in_epoch: usize,
    global_step: usize,
    seed: u64,
    loss_acc: f64,
    loss_count: usize,
    model: &M,
    optimizer: &Adam,
    normalizer: &Normalizer,
) {
    let ckpt = TrainCheckpoint {
        epoch: epoch as u64,
        step_in_epoch: step_in_epoch as u64,
        global_step: global_step as u64,
        seed,
        loss_acc,
        loss_count: loss_count as u64,
        params: model.params().clone(),
        adam: optimizer.export_state(),
        normalizer: *normalizer,
    };
    let _ = ckpt.save(dir.join(TrainCheckpoint::file_name(global_step as u64)));
}

/// Evaluates `model` on `dataset` with frozen parameters.
///
/// Returns the mean loss in normalized space (the paper's test-loss axis)
/// plus denormalized MAE metrics.
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate<M: GnnModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    normalizer: &Normalizer,
    loss_cfg: &LossConfig,
    batch_size: usize,
) -> EvalMetrics {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let mut loss_sum = 0.0f64;
    let mut n_batches = 0usize;
    let mut e_abs = 0.0f64;
    let mut n_graphs = 0usize;
    let mut f_abs = 0.0f64;
    let mut n_force_comps = 0usize;

    for (batch, targets) in BatchIterator::new(dataset, batch_size, None, *normalizer) {
        let mut tape = Tape::new();
        let pvars = model.params().bind_frozen(&mut tape);
        let out = model.forward(&mut tape, &pvars, &batch);
        let loss = loss_cfg.compute(&mut tape, out, &batch, &targets);
        loss_sum += tape.value(loss).item() as f64;
        n_batches += 1;

        // Denormalized MAEs.
        let pred_e = tape.value(out.energy);
        for g in 0..batch.n_graphs() {
            let n_atoms = batch.node_counts()[g] as f64;
            let pred_per_atom = pred_e.get(g, 0) as f64 / n_atoms;
            let tgt_per_atom = targets.energy.get(g, 0) as f64;
            e_abs += (pred_per_atom - tgt_per_atom).abs() * normalizer.energy_std;
            n_graphs += 1;
        }
        let pred_f = tape.value(out.forces);
        for a in 0..batch.n_nodes() {
            for k in 0..3 {
                let d = (pred_f.get(a, k) - targets.forces.get(a, k)) as f64;
                f_abs += d.abs() * normalizer.force_std;
                n_force_comps += 1;
            }
        }
    }

    EvalMetrics {
        loss: loss_sum / n_batches.max(1) as f64,
        energy_mae: e_abs / n_graphs.max(1) as f64,
        force_mae: f_abs / n_force_comps.max(1) as f64,
    }
}

/// Evaluates `model` separately on each source's slice of `dataset` —
/// the breakdown behind the paper's Fig. 4 distribution-mismatch
/// conjecture (a model trained on a biased subset should look fine on
/// the over-represented sources and poor on the missing ones).
///
/// Sources with no samples in `dataset` are omitted.
pub fn evaluate_per_source<M: GnnModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    normalizer: &Normalizer,
    loss_cfg: &LossConfig,
    batch_size: usize,
) -> Vec<(SourceKind, EvalMetrics)> {
    SourceKind::ALL
        .iter()
        .filter_map(|&kind| {
            let slice: Vec<_> = dataset
                .samples()
                .iter()
                .filter(|s| s.source == kind)
                .cloned()
                .collect();
            if slice.is_empty() {
                return None;
            }
            let sub = Dataset::from_samples(slice);
            Some((
                kind,
                evaluate(model, &sub, normalizer, loss_cfg, batch_size),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::GeneratorConfig;
    use matgnn_model::{Egnn, EgnnConfig};

    fn small_data() -> (Dataset, Dataset, Normalizer) {
        let (train, test) = Dataset::generate_split(30, 0.2, 23, &GeneratorConfig::default());
        let norm = Normalizer::fit(&train);
        (train, test, norm)
    }

    #[test]
    fn training_reduces_loss() {
        let (train, test, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(12, 2).with_seed(1));
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            base_lr: 5e-3,
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &train, Some(&test), &norm);
        assert_eq!(report.epochs.len(), 6);
        let first = report.epochs[0].train_loss;
        let last = report.epochs[5].train_loss;
        assert!(
            last < 0.7 * first,
            "training did not reduce loss: {first} → {last}"
        );
        assert!(report.final_loss().is_finite());
        assert!(report.steps > 0);
    }

    #[test]
    fn checkpointed_training_works() {
        let (train, _, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(2));
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            checkpointing: true,
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &train, None, &norm);
        let first = report.epochs[0].train_loss;
        let last = report.epochs[1].train_loss;
        assert!(
            last < first,
            "checkpointed training diverged: {first} → {last}"
        );
    }

    #[test]
    fn evaluate_is_deterministic_and_positive() {
        let (train, test, norm) = small_data();
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let m1 = evaluate(&model, &test, &norm, &LossConfig::default(), 8);
        let m2 = evaluate(&model, &test, &norm, &LossConfig::default(), 8);
        assert_eq!(m1.loss, m2.loss);
        assert!(m1.loss > 0.0);
        assert!(m1.energy_mae > 0.0);
        assert!(m1.force_mae > 0.0);
        let _ = train;
    }

    #[test]
    fn schedule_and_clipping_run() {
        let (train, _, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            schedule: LrSchedule::WarmupCosine {
                warmup_steps: 2,
                total_steps: 10,
                min_factor: 0.1,
            },
            grad_clip: Some(1.0),
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &train, None, &norm);
        assert!(report.epochs.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, _, norm) = small_data();
        let run = || {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 8,
                seed: 9,
                ..Default::default()
            };
            Trainer::new(cfg)
                .fit(&mut model, &train, None, &norm)
                .epochs[1]
                .train_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_source_evaluation_covers_present_sources() {
        let (train, test, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let _ = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        })
        .fit(&mut model, &train, None, &norm);
        let per_source = evaluate_per_source(&model, &test, &norm, &LossConfig::default(), 8);
        assert!(!per_source.is_empty());
        for (kind, m) in &per_source {
            assert!(m.loss.is_finite(), "{kind} loss");
            let n_in_test = test.samples().iter().filter(|s| s.source == *kind).count();
            assert!(n_in_test > 0, "{kind} reported but absent");
        }
        // The overall loss is bracketed by the per-source extremes.
        let overall = evaluate(&model, &test, &norm, &LossConfig::default(), 8).loss;
        let min = per_source
            .iter()
            .map(|(_, m)| m.loss)
            .fold(f64::INFINITY, f64::min);
        let max = per_source.iter().map(|(_, m)| m.loss).fold(0.0, f64::max);
        assert!(
            overall >= min * 0.99 && overall <= max * 1.01,
            "{min} ≤ {overall} ≤ {max}"
        );
    }

    #[test]
    fn gradient_accumulation_reduces_steps_and_converges() {
        let (train, _, norm) = small_data();
        let batches_per_epoch = train.len().div_ceil(8);
        let run = |accum: usize| {
            let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(8));
            let cfg = TrainConfig {
                epochs: 4,
                batch_size: 8,
                grad_accum_steps: accum,
                ..Default::default()
            };
            Trainer::new(cfg).fit(&mut model, &train, None, &norm)
        };
        let plain = run(1);
        let accum = run(3);
        assert_eq!(plain.steps, 4 * batches_per_epoch);
        // ceil(batches/3) optimizer steps per epoch (partial flush counts).
        assert_eq!(accum.steps, 4 * batches_per_epoch.div_ceil(3));
        let last = accum.epochs.last().expect("epochs").train_loss;
        let first = accum.epochs[0].train_loss;
        assert!(
            last < first,
            "accumulated training diverged: {first} → {last}"
        );
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let (train, test, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(9));
        // A zero learning rate guarantees a plateau from epoch 1 onward.
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 8,
            base_lr: 0.0,
            early_stop_patience: Some(2),
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &train, Some(&test), &norm);
        assert!(report.early_stopped);
        assert!(
            report.epochs.len() <= 4,
            "ran {} epochs",
            report.epochs.len()
        );
    }

    #[test]
    fn early_stopping_ignored_without_test_set() {
        let (train, _, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            base_lr: 0.0,
            early_stop_patience: Some(1),
            ..Default::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &train, None, &norm);
        assert!(!report.early_stopped);
        assert_eq!(report.epochs.len(), 3);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("matgnn_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resume_is_bitwise_identical_to_uninterrupted_run() {
        let (train, _, norm) = small_data();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            seed: 5,
            ..Default::default()
        };

        let mut reference = Egnn::new(EgnnConfig::new(8, 2).with_seed(4));
        let ref_report = Trainer::new(cfg).fit(&mut reference, &train, None, &norm);

        // Interrupted run: 2 epochs with checkpointing, then a resumed
        // trainer — seeded differently to prove the parameters really
        // come from the checkpoint, not from construction.
        let dir = ckpt_dir("resume");
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(4));
        let half = TrainConfig { epochs: 2, ..cfg };
        let _ = Trainer::new(half)
            .with_checkpointing(&dir, 1)
            .fit(&mut model, &train, None, &norm);
        let mut resumed = Egnn::new(EgnnConfig::new(8, 2).with_seed(99));
        let report = Trainer::new(cfg)
            .with_checkpointing(&dir, 1)
            .resume_latest()
            .fit(&mut resumed, &train, None, &norm);

        assert_eq!(report.epochs.len(), 2, "resume should run epochs 2..4");
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, 2 + i);
            assert_eq!(
                e.train_loss.to_bits(),
                ref_report.epochs[2 + i].train_loss.to_bits(),
                "epoch {} loss differs after resume",
                e.epoch
            );
        }
        assert!(
            reference
                .params()
                .flatten()
                .allclose(&resumed.params().flatten(), 0.0),
            "resumed parameters diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_epoch_resume_is_bitwise_identical() {
        let (train, _, norm) = small_data();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            seed: 11,
            ..Default::default()
        };

        let mut reference = Egnn::new(EgnnConfig::new(8, 2).with_seed(6));
        let ref_report = Trainer::new(cfg).fit(&mut reference, &train, None, &norm);

        // Full run checkpointing every step, then a directory holding
        // only a checkpoint from the middle of epoch 0 — as if the
        // process died right after writing it.
        let dir = ckpt_dir("midep");
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(6));
        let _ = Trainer::new(cfg)
            .with_checkpointing(&dir, 1)
            .fit(&mut model, &train, None, &norm);
        let crash_dir = ckpt_dir("midep_crash");
        let mid = TrainCheckpoint::file_name(1); // step 1 of 3 in epoch 0
        std::fs::copy(dir.join(&mid), crash_dir.join(&mid)).unwrap();
        let (_, ckpt) = latest_in(&crash_dir).expect("mid-epoch checkpoint");
        assert_eq!(ckpt.epoch, 0);
        assert!(ckpt.step_in_epoch > 0, "not a mid-epoch checkpoint");

        let mut resumed = Egnn::new(EgnnConfig::new(8, 2).with_seed(77));
        let report = Trainer::new(cfg)
            .with_checkpointing(&crash_dir, 1)
            .resume_latest()
            .fit(&mut resumed, &train, None, &norm);

        assert_eq!(report.epochs.len(), 2, "resume replays the torn epoch");
        for (e, r) in report.epochs.iter().zip(&ref_report.epochs) {
            assert_eq!(
                e.train_loss.to_bits(),
                r.train_loss.to_bits(),
                "epoch {} loss differs after mid-epoch resume",
                e.epoch
            );
        }
        assert!(
            reference
                .params()
                .flatten()
                .allclose(&resumed.params().flatten(), 0.0),
            "mid-epoch resumed parameters diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    #[test]
    fn supervision_is_transparent_on_a_healthy_run() {
        let (train, _, norm) = small_data();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            seed: 13,
            ..Default::default()
        };
        let mut plain = Egnn::new(EgnnConfig::new(8, 2).with_seed(7));
        let plain_report = Trainer::new(cfg).fit(&mut plain, &train, None, &norm);
        let mut watched = Egnn::new(EgnnConfig::new(8, 2).with_seed(7));
        let report = Trainer::new(cfg)
            .with_supervision(SupervisorConfig::default())
            .fit(&mut watched, &train, None, &norm);

        assert_eq!(report.health, RunHealth::Healthy);
        assert_eq!(report.rollbacks, 0);
        for (a, b) in report.epochs.iter().zip(&plain_report.epochs) {
            assert_eq!(
                a.train_loss.to_bits(),
                b.train_loss.to_bits(),
                "supervision perturbed epoch {}",
                a.epoch
            );
        }
        assert!(
            plain
                .params()
                .flatten()
                .allclose(&watched.params().flatten(), 0.0),
            "supervision perturbed the parameters"
        );
    }

    #[test]
    fn supervised_divergence_rolls_back_then_fails() {
        let (train, _, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(5));
        let snapshot = model.params().flatten();
        // An absurd LR blows the parameters up on the first optimizer
        // step; with no checkpoint directory each rollback restores the
        // entry snapshot, and the same divergence recurs until the
        // budget is spent.
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            base_lr: 1e12,
            grad_clip: None,
            ..Default::default()
        };
        let report = Trainer::new(cfg)
            .with_supervision(SupervisorConfig {
                anomaly_window: 1,
                max_rollbacks: 2,
                ..Default::default()
            })
            .fit(&mut model, &train, None, &norm);

        assert_eq!(report.health, RunHealth::Failed);
        assert_eq!(report.rollbacks, 2, "budget allows exactly 2 rollbacks");
        // The abandoned model holds the last (anomalous) attempt's
        // parameters, not the snapshot — the caller decides what to do.
        let _ = snapshot;
    }

    #[test]
    fn trainer_prunes_checkpoints_to_the_cap() {
        let (train, _, norm) = small_data();
        let dir = ckpt_dir("retention");
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(3));
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        };
        let _ = Trainer::new(cfg)
            .with_checkpointing(&dir, 1)
            .keep_checkpoints(2)
            .fit(&mut model, &train, None, &norm);

        let n_files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_files, 2, "retention left {n_files} checkpoints");
        let (_, newest) = latest_in(&dir).expect("newest checkpoint");
        // 24 train graphs / batch 8 = 3 steps per epoch, 2 epochs.
        assert_eq!(newest.global_step, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_train_panics() {
        let (_, _, norm) = small_data();
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let _ = Trainer::default().fit(&mut model, &Dataset::default(), None, &norm);
    }
}
