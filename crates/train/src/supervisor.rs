//! Training-run supervision: numerical anomaly detection and the
//! rollback state machine that turns a detected anomaly into automatic
//! recovery instead of a dead or silently-diverged run.
//!
//! The supervisor closes a detect→decide→recover loop around the
//! training step:
//!
//! 1. **Detect** — after each optimizer step the loss is checked for
//!    NaN/Inf and for spikes against a rolling median of recent healthy
//!    losses ([`AnomalyDetector`]). Post-step parameters are checked for
//!    non-finite values, which catches a NaN that entered through the
//!    *gradient* (a NaN gradient makes the Adam update non-finite on the
//!    same step on every rank, since replicas are identical).
//! 2. **Decide** — in the distributed runner every rank contributes its
//!    local verdict to a 1-element sum all-reduce; any non-zero flag
//!    means *all* ranks roll back, so the decision is collective and
//!    deterministic (same inputs → same verdict on every rank).
//! 3. **Recover** — roll back to the last good checkpoint, re-run with
//!    the anomaly source gone (transient) or with the learning rate
//!    backed off (repeated), and give up after a bounded retry budget
//!    ([`RunHealth::Failed`]).
//!
//! States move `Healthy → Anomalous → RolledBack → Degraded → Failed`
//! (see DESIGN.md §7.6); [`RollbackBudget`] is the bookkeeping that
//! drives those transitions.

/// Configuration of the anomaly detector and rollback budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Window of recent healthy losses the rolling median is taken over.
    pub anomaly_window: usize,
    /// A loss is a spike when it exceeds `median * spike_threshold`
    /// (checked only once the window is full).
    pub spike_threshold: f64,
    /// Total rollbacks allowed before the run is declared failed.
    pub max_rollbacks: u32,
    /// LR multiplier applied per *consecutive* rollback beyond the
    /// first retry (the first retry runs at full LR so a transient
    /// fault recovers bitwise-identically to an undisturbed run).
    pub lr_backoff: f32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            anomaly_window: 8,
            spike_threshold: 10.0,
            max_rollbacks: 3,
            lr_backoff: 0.5,
        }
    }
}

impl SupervisorConfig {
    /// The LR multiplier for a retry after `consecutive` consecutive
    /// rollbacks of the same step: `1.0` for the first retry (bitwise
    /// transparency for transient faults), then `lr_backoff^(n-1)`.
    pub fn retry_lr_factor(&self, consecutive: u32) -> f32 {
        crate::LrSchedule::backoff_factor(self.lr_backoff, consecutive)
    }
}

/// What the detector concluded about one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The step looks numerically sound.
    Healthy,
    /// Loss or parameters are NaN/Inf.
    NonFinite,
    /// Loss exceeded the rolling-median spike threshold.
    Spike,
}

impl Verdict {
    /// Whether the step must be rolled back.
    pub fn is_anomalous(self) -> bool {
        !matches!(self, Verdict::Healthy)
    }
}

/// Rolling-median spike detector over recent healthy losses.
///
/// Observations are keyed by global step and only accepted in strictly
/// increasing order, so re-executing steps after a rollback does not
/// double-count them; anomalous losses are never admitted into the
/// window (a spike must not drag the median up to meet it).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    window: usize,
    spike_threshold: f64,
    recent: Vec<f64>,
    highest_step: Option<u64>,
}

impl AnomalyDetector {
    /// A detector with the given window and spike threshold.
    pub fn new(cfg: &SupervisorConfig) -> Self {
        AnomalyDetector {
            window: cfg.anomaly_window.max(1),
            spike_threshold: cfg.spike_threshold,
            recent: Vec::new(),
            highest_step: None,
        }
    }

    /// Judges the loss of `global_step` and, when healthy, admits it
    /// into the rolling window. Steps at or below the highest step seen
    /// are judged but not re-admitted (rollback re-execution).
    pub fn observe(&mut self, global_step: u64, loss: f64) -> Verdict {
        let verdict = self.judge(loss);
        if verdict == Verdict::Healthy && self.highest_step.is_none_or(|h| global_step > h) {
            self.highest_step = Some(global_step);
            if self.recent.len() == self.window {
                self.recent.remove(0);
            }
            self.recent.push(loss);
        }
        verdict
    }

    /// The verdict for a loss value without recording it.
    pub fn judge(&self, loss: f64) -> Verdict {
        if !loss.is_finite() {
            return Verdict::NonFinite;
        }
        if self.recent.len() == self.window {
            let median = self.rolling_median();
            // Guard the degenerate all-zero window: any positive loss
            // would be an infinite ratio.
            let floor = median.abs().max(1e-12);
            if loss > floor * self.spike_threshold {
                return Verdict::Spike;
            }
        }
        Verdict::Healthy
    }

    /// Median of the current window (0 when empty).
    pub fn rolling_median(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let mut sorted = self.recent.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        }
    }

    /// Number of healthy losses currently in the window.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }
}

/// Overall health of a supervised run (DESIGN.md §7.6 state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunHealth {
    /// No anomaly outstanding.
    Healthy,
    /// An anomaly was detected this step; rollback is pending.
    Anomalous,
    /// Rolled back at least once; retrying at full LR.
    RolledBack,
    /// Repeated rollbacks of the same region; retrying with LR backed
    /// off.
    Degraded,
    /// The retry budget is exhausted; the run is abandoned.
    Failed,
}

/// Retry bookkeeping: total and consecutive rollback counts, and the
/// health-state transitions they imply.
#[derive(Debug, Clone)]
pub struct RollbackBudget {
    cfg: SupervisorConfig,
    total: u32,
    consecutive: u32,
    health: RunHealth,
}

impl RollbackBudget {
    /// A fresh budget in the [`RunHealth::Healthy`] state.
    pub fn new(cfg: SupervisorConfig) -> Self {
        RollbackBudget {
            cfg,
            total: 0,
            consecutive: 0,
            health: RunHealth::Healthy,
        }
    }

    /// Records an anomaly verdict. Returns the new health state:
    /// [`RunHealth::Failed`] once the total budget is exhausted,
    /// otherwise `Anomalous` (a rollback should follow).
    pub fn record_anomaly(&mut self) -> RunHealth {
        self.total += 1;
        self.consecutive += 1;
        self.health = if self.total > self.cfg.max_rollbacks {
            RunHealth::Failed
        } else {
            RunHealth::Anomalous
        };
        self.health
    }

    /// Records that the rollback completed and the run is retrying.
    pub fn record_rolled_back(&mut self) -> RunHealth {
        if self.health != RunHealth::Failed {
            self.health = if self.consecutive > 1 {
                RunHealth::Degraded
            } else {
                RunHealth::RolledBack
            };
        }
        self.health
    }

    /// Records a healthy supervised step: consecutive-rollback streak
    /// resets and the run returns to [`RunHealth::Healthy`].
    pub fn record_healthy_step(&mut self) -> RunHealth {
        self.consecutive = 0;
        if self.health != RunHealth::Failed {
            self.health = RunHealth::Healthy;
        }
        self.health
    }

    /// The LR multiplier retries should run at (1.0 on the first retry,
    /// backed off on repeated consecutive rollbacks).
    pub fn retry_lr_factor(&self) -> f32 {
        self.cfg.retry_lr_factor(self.consecutive)
    }

    /// Total rollbacks so far.
    pub fn total_rollbacks(&self) -> u32 {
        self.total
    }

    /// Consecutive rollbacks without an intervening healthy step.
    pub fn consecutive_rollbacks(&self) -> u32 {
        self.consecutive
    }

    /// Current health state.
    pub fn health(&self) -> RunHealth {
        self.health
    }

    /// Whether the run has exhausted its budget.
    pub fn failed(&self) -> bool {
        self.health == RunHealth::Failed
    }
}

/// Whether every parameter value in `params` is finite. The post-step
/// NaN-gradient probe: replicas are identical after the optimizer step,
/// so every rank computes the same answer without communicating.
pub fn params_finite<'a>(params: impl IntoIterator<Item = &'a f32>) -> bool {
    params.into_iter().all(|p| p.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            anomaly_window: 4,
            spike_threshold: 10.0,
            max_rollbacks: 2,
            lr_backoff: 0.5,
        }
    }

    #[test]
    fn nan_and_inf_are_nonfinite() {
        let mut det = AnomalyDetector::new(&cfg());
        assert_eq!(det.observe(0, f64::NAN), Verdict::NonFinite);
        assert_eq!(det.observe(0, f64::INFINITY), Verdict::NonFinite);
        assert_eq!(det.observe(0, 1.0), Verdict::Healthy);
    }

    #[test]
    fn spike_needs_a_full_window() {
        let mut det = AnomalyDetector::new(&cfg());
        // Window not yet full: even a huge loss is not judged a spike.
        assert_eq!(det.observe(0, 1.0), Verdict::Healthy);
        assert_eq!(det.observe(1, 1000.0), Verdict::Healthy);
        let mut det = AnomalyDetector::new(&cfg());
        for step in 0..4 {
            assert_eq!(
                det.observe(step, 1.0 + step as f64 * 0.01),
                Verdict::Healthy
            );
        }
        // Window full, median ≈ 1: 10x the median is flagged.
        assert_eq!(det.observe(4, 50.0), Verdict::Spike);
        // The spike was not admitted — a normal loss stays healthy.
        assert_eq!(det.observe(5, 1.05), Verdict::Healthy);
    }

    #[test]
    fn rollback_reexecution_does_not_double_count() {
        let mut det = AnomalyDetector::new(&cfg());
        for step in 0..3 {
            det.observe(step, 1.0);
        }
        assert_eq!(det.len(), 3);
        // Re-observing old steps (post-rollback replay) judges but does
        // not grow the window.
        det.observe(1, 1.0);
        det.observe(2, 1.0);
        assert_eq!(det.len(), 3);
        det.observe(3, 1.0);
        assert_eq!(det.len(), 4);
    }

    #[test]
    fn rolling_median_is_the_median() {
        let mut det = AnomalyDetector::new(&cfg());
        for (step, loss) in [3.0, 1.0, 2.0, 100.0].iter().enumerate() {
            det.observe(step as u64, *loss);
        }
        assert_eq!(det.rolling_median(), 2.5);
    }

    #[test]
    fn budget_walks_the_state_machine() {
        let mut b = RollbackBudget::new(cfg());
        assert_eq!(b.health(), RunHealth::Healthy);
        assert!((b.retry_lr_factor() - 1.0).abs() < 1e-9);

        // First anomaly: rollback at full LR.
        assert_eq!(b.record_anomaly(), RunHealth::Anomalous);
        assert_eq!(b.record_rolled_back(), RunHealth::RolledBack);
        assert!((b.retry_lr_factor() - 1.0).abs() < 1e-9);

        // Second consecutive anomaly: degraded, LR backed off.
        assert_eq!(b.record_anomaly(), RunHealth::Anomalous);
        assert_eq!(b.record_rolled_back(), RunHealth::Degraded);
        assert!((b.retry_lr_factor() - 0.5).abs() < 1e-9);

        // A healthy step clears the streak.
        assert_eq!(b.record_healthy_step(), RunHealth::Healthy);
        assert_eq!(b.consecutive_rollbacks(), 0);
        assert_eq!(b.total_rollbacks(), 2);

        // Third anomaly exceeds max_rollbacks=2: failed, terminally.
        assert_eq!(b.record_anomaly(), RunHealth::Failed);
        assert!(b.failed());
        assert_eq!(b.record_rolled_back(), RunHealth::Failed);
        assert_eq!(b.record_healthy_step(), RunHealth::Failed);
    }

    #[test]
    fn params_finite_detects_poison() {
        assert!(params_finite(&[1.0f32, -2.0, 0.0]));
        assert!(!params_finite(&[1.0f32, f32::NAN]));
        assert!(!params_finite(&[f32::INFINITY]));
    }
}
