//! Gradient noise scale estimation (McCandlish et al., *An Empirical Model
//! of Large-Batch Training*) — the LLM-scaling tool that predicts the
//! **critical batch size**: below it, training is gradient-noise limited
//! and larger batches give near-linear speedups; above it, returns
//! diminish.
//!
//! For a scaling study like the paper's (fixed global batch across model
//! and data sizes), the noise scale answers the infrastructure question
//! "how much data parallelism can these runs actually absorb?" — the
//! missing quantitative link behind its Sec. V scalability discussion.
//!
//! The simple estimator uses gradient norms at two batch sizes. With `G_B`
//! the mini-batch gradient at batch size `B`,
//! `E‖G_B‖² = ‖G‖² + tr(Σ)/B`, so two sizes `B₁ < B₂` give
//!
//! ```text
//! ‖G‖²   ≈ (B₂·‖G_B₂‖² − B₁·‖G_B₁‖²) / (B₂ − B₁)
//! tr(Σ)  ≈ (‖G_B₁‖² − ‖G_B₂‖²) / (1/B₁ − 1/B₂)
//! B_simple = tr(Σ) / ‖G‖²
//! ```

use matgnn_data::{BatchIterator, Dataset, Normalizer};
use matgnn_model::GnnModel;
use serde::{Deserialize, Serialize};

use crate::{vanilla_step, LossConfig};

/// The estimated gradient statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NoiseScaleEstimate {
    /// Estimated squared norm of the true (full-batch) gradient.
    pub g2: f64,
    /// Estimated trace of the per-example gradient covariance.
    pub trace_sigma: f64,
    /// The simple noise scale `B_simple = tr(Σ)/‖G‖²` — the critical
    /// batch size. `f64::INFINITY` when `‖G‖² ≤ 0` is estimated (pure
    /// noise regime).
    pub b_simple: f64,
    /// Small batch size used.
    pub b_small: usize,
    /// Large batch size used.
    pub b_big: usize,
    /// Gradient evaluations averaged per batch size.
    pub n_estimates: usize,
}

impl NoiseScaleEstimate {
    /// Per-**step** progress at batch size `b` relative to the full-batch
    /// ideal, per the McCandlish model: `1 / (1 + B_noise/b)`. Grows with
    /// `b` and saturates at 1.
    pub fn efficiency_at(&self, batch: usize) -> f64 {
        if !self.b_simple.is_finite() {
            return 0.0;
        }
        1.0 / (1.0 + self.b_simple / batch.max(1) as f64)
    }

    /// Per-**sample** efficiency at batch size `b`: `1 / (1 + b/B_noise)`.
    /// Near 1 while `b ≪ B_noise`; beyond the critical batch size each
    /// extra sample contributes proportionally less.
    pub fn sample_efficiency_at(&self, batch: usize) -> f64 {
        if !self.b_simple.is_finite() {
            return 1.0;
        }
        1.0 / (1.0 + batch.max(1) as f64 / self.b_simple.max(1e-12))
    }

    /// Whether the two-point estimate looks trustworthy (a negative trace
    /// means sampling error exceeded the batch-size effect).
    pub fn is_reliable(&self) -> bool {
        self.trace_sigma > 0.0 && self.g2 > 0.0
    }
}

/// Mean squared gradient norm over `n` freshly-shuffled batches of size
/// `batch_size`.
fn mean_grad_norm_sq<M: GnnModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    normalizer: &Normalizer,
    loss_cfg: &LossConfig,
    batch_size: usize,
    n: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut shuffle = seed;
    while count < n {
        for (batch, targets) in BatchIterator::new(dataset, batch_size, Some(shuffle), *normalizer)
        {
            if batch.n_graphs() < batch_size {
                continue; // keep the estimator's B exact
            }
            let outcome = vanilla_step(model, &batch, &targets, loss_cfg, None);
            total += outcome
                .grads
                .iter()
                .map(|g| g.norm_sq() as f64)
                .sum::<f64>();
            count += 1;
            if count >= n {
                break;
            }
        }
        shuffle = shuffle.wrapping_add(0x9E37_79B9);
    }
    total / count.max(1) as f64
}

/// Estimates the gradient noise scale of `model` on `dataset`.
///
/// # Panics
///
/// Panics unless `b_small < b_big`, `n_estimates ≥ 1`, and the dataset
/// holds at least `b_big` graphs.
#[allow(clippy::too_many_arguments)] // mirrors the estimator's knobs
pub fn estimate_noise_scale<M: GnnModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    normalizer: &Normalizer,
    loss_cfg: &LossConfig,
    b_small: usize,
    b_big: usize,
    n_estimates: usize,
    seed: u64,
) -> NoiseScaleEstimate {
    assert!(b_small >= 1 && b_small < b_big, "need b_small < b_big");
    assert!(n_estimates >= 1, "need at least one estimate");
    assert!(
        dataset.len() >= b_big,
        "dataset of {} graphs cannot form a batch of {b_big}",
        dataset.len()
    );
    let gsq_small = mean_grad_norm_sq(
        model,
        dataset,
        normalizer,
        loss_cfg,
        b_small,
        n_estimates,
        seed,
    );
    let gsq_big = mean_grad_norm_sq(
        model,
        dataset,
        normalizer,
        loss_cfg,
        b_big,
        n_estimates,
        seed ^ 0xB16,
    );
    let (bs, bb) = (b_small as f64, b_big as f64);
    let g2 = (bb * gsq_big - bs * gsq_small) / (bb - bs);
    let trace_sigma = (gsq_small - gsq_big) / (1.0 / bs - 1.0 / bb);
    let b_simple = if g2 > 0.0 {
        (trace_sigma / g2).max(0.0)
    } else {
        f64::INFINITY
    };
    NoiseScaleEstimate {
        g2,
        trace_sigma,
        b_simple,
        b_small,
        b_big,
        n_estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::GeneratorConfig;
    use matgnn_model::{Egnn, EgnnConfig};

    fn setup() -> (Dataset, Normalizer, Egnn) {
        let ds = Dataset::generate_aggregate(64, 47, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        (ds, norm, Egnn::new(EgnnConfig::new(8, 2).with_seed(3)))
    }

    #[test]
    fn estimate_is_finite_and_consistent() {
        let (ds, norm, model) = setup();
        let est = estimate_noise_scale(&model, &ds, &norm, &LossConfig::default(), 2, 16, 6, 1);
        assert!(est.trace_sigma.is_finite());
        assert!(est.g2.is_finite());
        assert!(est.b_simple >= 0.0, "noise scale {}", est.b_simple);
        // Self-consistency: the model E‖G_B‖² = g2 + trΣ/B must reproduce
        // a *third* batch size's measured norm reasonably well.
        let measured_mid = mean_grad_norm_sq(&model, &ds, &norm, &LossConfig::default(), 8, 6, 2);
        let predicted_mid = est.g2 + est.trace_sigma / 8.0;
        assert!(
            (measured_mid - predicted_mid).abs() < 0.7 * measured_mid.abs().max(1e-9),
            "measured {measured_mid} vs predicted {predicted_mid}"
        );
    }

    #[test]
    // Re-triaged (observability PR): this was `#[ignore]`d as a seed
    // regression when the batch-16 estimate exceeded the batch-2 one.
    // The force-target bound fix and the per-source normalizer fix that
    // landed since changed the labels this seed produces, and the trend
    // is now strongly restored: re-derived at the current seed,
    // E‖G_2‖² ≈ 5.1 × E‖G_16‖² (the McCandlish model predicts
    // E‖G_B‖² = ‖G‖² + trΣ/B, so the batch-2 estimate must exceed the
    // batch-16 one whenever trΣ > 0). The assertion is restored with a
    // calibrated 1.5× bound — far above equality, far below the
    // measured 5.1× — so genuine trend inversion fails loudly while
    // estimator noise (±tens of percent at n=8) cannot flake it.
    fn smaller_batches_have_noisier_gradients() {
        let (ds, norm, model) = setup();
        let small = mean_grad_norm_sq(&model, &ds, &norm, &LossConfig::default(), 2, 8, 3);
        let big = mean_grad_norm_sq(&model, &ds, &norm, &LossConfig::default(), 16, 8, 3);
        assert!(
            small > 1.5 * big,
            "E‖G_B‖² should shrink with B (measured ≈5.1× at this seed): {small} vs {big}"
        );
    }

    #[test]
    fn efficiency_monotone_in_batch() {
        let est = NoiseScaleEstimate {
            g2: 1.0,
            trace_sigma: 32.0,
            b_simple: 32.0,
            b_small: 2,
            b_big: 16,
            n_estimates: 4,
        };
        assert!(est.efficiency_at(4) < est.efficiency_at(32));
        assert!(est.efficiency_at(32) < est.efficiency_at(512));
        // At B = B_noise the efficiency is exactly ½.
        assert!((est.efficiency_at(32) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "b_small < b_big")]
    fn invalid_batch_sizes_rejected() {
        let (ds, norm, model) = setup();
        let _ = estimate_noise_scale(&model, &ds, &norm, &LossConfig::default(), 8, 8, 1, 0);
    }
}
