//! Peak-memory and wall-time profiling of one training step — the
//! measurement behind the paper's Fig. 6 breakdown and Table II overheads.
//!
//! A profiled step registers every persistent buffer a real framework
//! holds (weights, parameter gradients, Adam moments) with the
//! [`MemoryTracker`]; the tape registers transient activations and
//! in-flight gradients. The report captures the breakdown **at the instant
//! of the global peak**, which the paper observes lands at the start of
//! the backward pass for the vanilla path.

use std::time::{Duration, Instant};

use matgnn_data::Targets;
use matgnn_graph::GraphBatch;
use matgnn_model::GnnModel;
use matgnn_tensor::recycler::{self, RecyclerStats};
use matgnn_tensor::{MemoryBreakdown, MemoryCategory, MemorySnapshot, MemoryTracker};

use crate::{train_step, Adam, AdamHyper, LossConfig, Optimizer};

/// Report from one profiled training step.
#[derive(Debug, Clone)]
pub struct StepProfile {
    /// Highest total bytes observed.
    pub peak_total: u64,
    /// Per-category breakdown at the peak instant.
    pub peak: MemoryBreakdown,
    /// Labelled snapshots taken at phase boundaries.
    pub snapshots: Vec<MemorySnapshot>,
    /// Wall time of forward + backward + optimizer step.
    pub wall: Duration,
    /// The step's loss value.
    pub loss: f64,
    /// Buffer-recycler activity during the step (hit/miss/bytes-reused
    /// deltas; all zero when `MATGNN_RECYCLER=off`).
    pub recycler: RecyclerStats,
}

impl StepProfile {
    /// Activation share of the peak (the paper reports 76.9% for vanilla).
    pub fn activation_fraction(&self) -> f64 {
        self.peak.fraction(MemoryCategory::Activations)
    }

    /// Optimizer-state share of the peak.
    pub fn optimizer_fraction(&self) -> f64 {
        self.peak.fraction(MemoryCategory::OptimizerState)
    }

    /// Publishes the profile into the process-wide telemetry metrics
    /// registry under `{prefix}.*` — the shared reporting channel the
    /// bench tables and JSONL metric flushes read from.
    pub fn publish_telemetry(&self, prefix: &str) {
        matgnn_telemetry::gauge_set(format!("{prefix}.peak.total_bytes"), self.peak_total as f64);
        for cat in MemoryCategory::ALL {
            let slug = cat.label().replace(' ', "_");
            matgnn_telemetry::gauge_set(
                format!("{prefix}.peak.{slug}_bytes"),
                self.peak.get(cat) as f64,
            );
        }
        matgnn_telemetry::gauge_set(format!("{prefix}.wall_us"), self.wall.as_micros() as f64);
        matgnn_telemetry::gauge_set(format!("{prefix}.loss"), self.loss);
        matgnn_telemetry::counter_set(format!("{prefix}.recycler.hits"), self.recycler.hits);
        matgnn_telemetry::counter_set(format!("{prefix}.recycler.misses"), self.recycler.misses);
        matgnn_telemetry::counter_set(
            format!("{prefix}.recycler.bytes_reused"),
            self.recycler.bytes_reused,
        );
    }
}

/// Runs one fully-profiled training step (forward, backward, Adam update)
/// and returns the memory/time report.
///
/// `checkpointed` selects the activation-checkpointed execution path.
pub fn profile_step<M: GnnModel>(
    model: &mut M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    checkpointed: bool,
) -> StepProfile {
    let tracker = MemoryTracker::new();
    let recycler_before = recycler::stats();
    // Persistent buffers a framework holds for the whole run:
    let weight_bytes = model.params().bytes();
    tracker.alloc(MemoryCategory::Weights, weight_bytes);
    let mut optimizer = Adam::new(model.params(), AdamHyper::default(), Some(tracker.clone()));
    tracker.snapshot("steady state (weights + optimizer)");

    let profile_span = matgnn_telemetry::span("profile.step");
    let start = Instant::now();
    let outcome = train_step(
        model,
        batch,
        targets,
        loss_cfg,
        checkpointed,
        Some(&tracker),
    );
    // Materialized parameter gradients persist until the optimizer step.
    let grad_bytes: u64 = outcome.grads.iter().map(|g| g.bytes() as u64).sum();
    tracker.alloc(MemoryCategory::Gradients, grad_bytes);
    tracker.snapshot("before optimizer step");
    optimizer.step(model.params_mut(), &outcome.grads, 1e-3);
    tracker.free(MemoryCategory::Gradients, grad_bytes);
    tracker.snapshot("after optimizer step");
    // The update consumed the gradients; return their buffers.
    for g in outcome.grads {
        g.recycle();
    }
    let wall = start.elapsed();
    drop(profile_span);

    let profile = StepProfile {
        peak_total: tracker.peak_total(),
        peak: tracker.at_peak(),
        snapshots: tracker.snapshots(),
        wall,
        loss: outcome.loss,
        recycler: recycler::stats().delta_since(&recycler_before),
    };
    profile.publish_telemetry(if checkpointed {
        "profile.ckpt"
    } else {
        "profile.vanilla"
    });
    drop(optimizer); // frees optimizer-state accounting
    tracker.free(MemoryCategory::Weights, weight_bytes);
    profile
}

/// Averages the wall time of `reps` profiled steps (first call also
/// returns the memory profile of the final rep).
pub fn profile_step_timed<M: GnnModel>(
    model: &mut M,
    batch: &GraphBatch,
    targets: &Targets,
    loss_cfg: &LossConfig,
    checkpointed: bool,
    reps: usize,
) -> StepProfile {
    assert!(reps >= 1, "need at least one rep");
    let mut last = None;
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let p = profile_step(model, batch, targets, loss_cfg, checkpointed);
        total += p.wall;
        last = Some(p);
    }
    let mut p = last.expect("reps >= 1");
    p.wall = total / reps as u32;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_data::{collate, Dataset, GeneratorConfig, Normalizer, Sample};
    use matgnn_model::{Egnn, EgnnConfig};

    fn setup() -> (GraphBatch, Targets) {
        let ds = Dataset::generate_aggregate(8, 31, &GeneratorConfig::default());
        let norm = Normalizer::fit(&ds);
        let samples: Vec<&Sample> = ds.samples().iter().collect();
        collate(&samples, &norm)
    }

    #[test]
    fn vanilla_peak_dominated_by_activations() {
        // The paper's Fig. 6(a): activations are the largest category at
        // the peak for an untreated training step on a deep-enough model.
        let mut model = Egnn::new(EgnnConfig::new(16, 5));
        let (batch, targets) = setup();
        let p = profile_step(&mut model, &batch, &targets, &LossConfig::default(), false);
        assert!(p.peak_total > 0);
        assert!(
            p.activation_fraction() > 0.5,
            "activations only {:.1}% of peak",
            100.0 * p.activation_fraction()
        );
    }

    #[test]
    fn checkpointing_cuts_peak() {
        let mut model = Egnn::new(EgnnConfig::new(16, 5));
        let (batch, targets) = setup();
        let vanilla = profile_step(&mut model, &batch, &targets, &LossConfig::default(), false);
        let ckpt = profile_step(&mut model, &batch, &targets, &LossConfig::default(), true);
        assert!(
            (ckpt.peak_total as f64) < 0.8 * vanilla.peak_total as f64,
            "ckpt {} vs vanilla {}",
            ckpt.peak_total,
            vanilla.peak_total
        );
    }

    #[test]
    fn snapshots_recorded_in_order() {
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let (batch, targets) = setup();
        let p = profile_step(&mut model, &batch, &targets, &LossConfig::default(), false);
        let labels: Vec<&str> = p.snapshots.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"before optimizer step"));
        assert!(labels.contains(&"after optimizer step"));
        // Optimizer states present at steady state: 2× weights.
        let steady = &p.snapshots[0].breakdown;
        assert_eq!(
            steady.get(MemoryCategory::OptimizerState),
            2 * steady.get(MemoryCategory::Weights)
        );
    }

    #[test]
    fn timed_profile_averages() {
        let mut model = Egnn::new(EgnnConfig::new(8, 2));
        let (batch, targets) = setup();
        let p = profile_step_timed(
            &mut model,
            &batch,
            &targets,
            &LossConfig::default(),
            false,
            2,
        );
        assert!(p.wall > Duration::ZERO);
    }
}
