//! Optimizers: SGD with momentum and Adam, with optimizer-state memory
//! accounting.
//!
//! The paper's Fig. 6 identifies Adam's moment vectors (2× the weight
//! bytes) as the second-largest peak-memory contributor; the constructors
//! here register exactly those bytes with the [`MemoryTracker`] so the
//! profiled breakdown reflects real buffers, and the ZeRO implementation
//! in `matgnn-dist` reuses [`adam_update`] on per-rank shards.

use matgnn_model::ParamSet;
use matgnn_tensor::{pool, simd, MemoryCategory, MemoryTracker, Tensor};

/// Element count below which [`adam_update`] stays serial (pool dispatch
/// costs more than the update for small parameters).
const ADAM_PAR_MIN: usize = 1 << 16;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamHyper {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// Decoupled weight decay (AdamW); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamHyper {
    fn default() -> Self {
        AdamHyper {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// One Adam step on a flat slice: updates `param` in place from `grad`,
/// maintaining moments `m` / `v` at timestep `t` (1-based).
///
/// Exposed so ZeRO sharding can update only the slice a rank owns. Large
/// parameters are split across the worker pool by element range, and the
/// update itself runs in the fused [`simd::adam_slice`] kernel (FMA on the
/// AVX2 tier, the legacy loop verbatim on the scalar tier). It is purely
/// elementwise, so within a tier the result is bitwise identical to the
/// serial path at any thread count.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn adam_update(
    param: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    t: u64,
    lr: f32,
    hyper: &AdamHyper,
) {
    assert!(t >= 1, "adam timestep is 1-based");
    assert_eq!(param.len(), grad.len());
    assert_eq!(param.len(), m.len());
    assert_eq!(param.len(), v.len());
    let n = param.len();
    let args = simd::AdamSliceArgs {
        beta1: hyper.beta1,
        beta2: hyper.beta2,
        bc1: 1.0 - hyper.beta1.powi(t as i32),
        bc2: 1.0 - hyper.beta2.powi(t as i32),
        lr,
        eps: hyper.eps,
        weight_decay: hyper.weight_decay,
    };
    if n >= ADAM_PAR_MIN && pool::num_threads() > 1 {
        let pp = pool::SendPtr::new(param);
        let mp = pool::SendPtr::new(m);
        let vp = pool::SendPtr::new(v);
        pool::parallel_ranges(n, 1, |r| {
            // SAFETY: `parallel_ranges` hands out disjoint ranges, applied
            // identically to all three buffers, and the borrows outlive
            // the (blocking) call.
            unsafe {
                simd::adam_slice(
                    pp.slice(r.clone()),
                    &grad[r.clone()],
                    mp.slice(r.clone()),
                    vp.slice(r),
                    &args,
                )
            };
        });
    } else {
        simd::adam_slice(param, grad, m, v, &args);
    }
}

/// A first-order optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Applies one update step. `grads` must align with the param set
    /// (same order, same shapes).
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor], lr: f32);

    /// Bytes of persistent optimizer state.
    fn state_bytes(&self) -> u64;

    /// Short description for logs.
    fn describe(&self) -> String;
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Tensor>,
    tracker: Option<MemoryTracker>,
}

impl Sgd {
    /// Creates SGD matching `params`' shapes. `momentum` of 0 disables the
    /// velocity buffers (and their memory cost).
    pub fn new(params: &ParamSet, momentum: f32, tracker: Option<MemoryTracker>) -> Self {
        let velocity = if momentum > 0.0 {
            params
                .iter()
                .map(|e| Tensor::zeros(e.tensor.shape().clone()))
                .collect()
        } else {
            Vec::new()
        };
        let me = Sgd {
            momentum,
            velocity,
            tracker,
        };
        if let Some(t) = &me.tracker {
            t.alloc(MemoryCategory::OptimizerState, me.state_bytes());
        }
        me
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor], lr: f32) {
        assert_eq!(grads.len(), params.len(), "gradient/param count mismatch");
        let momentum = self.momentum;
        for (i, entry) in params.iter_mut().enumerate() {
            if momentum > 0.0 {
                self.velocity[i].zip_assign(&grads[i], |v, g| momentum * v + g);
                entry.tensor.axpy(-lr, &self.velocity[i]);
            } else {
                entry.tensor.axpy(-lr, &grads[i]);
            }
        }
    }

    fn state_bytes(&self) -> u64 {
        self.velocity.iter().map(|t| t.bytes() as u64).sum()
    }

    fn describe(&self) -> String {
        format!("sgd(momentum={})", self.momentum)
    }
}

impl Drop for Sgd {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.free(MemoryCategory::OptimizerState, self.state_bytes());
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
#[derive(Debug)]
pub struct Adam {
    hyper: AdamHyper,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    tracker: Option<MemoryTracker>,
}

impl Adam {
    /// Creates Adam state matching `params`' shapes, registering its two
    /// moment buffers (2× weight bytes) with the tracker.
    pub fn new(params: &ParamSet, hyper: AdamHyper, tracker: Option<MemoryTracker>) -> Self {
        let m: Vec<Tensor> = params
            .iter()
            .map(|e| Tensor::zeros(e.tensor.shape().clone()))
            .collect();
        let v = m.clone();
        let me = Adam {
            hyper,
            m,
            v,
            t: 0,
            tracker,
        };
        if let Some(t) = &me.tracker {
            t.alloc(MemoryCategory::OptimizerState, me.state_bytes());
        }
        me
    }

    /// The hyperparameters in use.
    pub fn hyper(&self) -> &AdamHyper {
        &self.hyper
    }

    /// Steps taken so far.
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// Snapshots the moment buffers (flattened in parameter order) and
    /// timestep for checkpointing.
    pub fn export_state(&self) -> AdamState {
        let flatten = |ts: &[Tensor]| ts.iter().flat_map(|t| t.data().iter().copied()).collect();
        AdamState {
            m: flatten(&self.m),
            v: flatten(&self.v),
            t: self.t,
        }
    }

    /// Restores moments and timestep from [`export_state`](Self::export_state)
    /// output. Exact inverse: a restored optimizer continues bitwise
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if the flattened state length does not match this
    /// optimizer's parameter layout.
    pub fn restore_state(&mut self, state: &AdamState) {
        let unflatten = |ts: &mut [Tensor], flat: &[f32]| {
            let total: usize = ts.iter().map(|t| t.numel()).sum();
            assert_eq!(flat.len(), total, "adam state length mismatch");
            let mut offset = 0;
            for t in ts.iter_mut() {
                let n = t.numel();
                t.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        };
        unflatten(&mut self.m, &state.m);
        unflatten(&mut self.v, &state.v);
        self.t = state.t;
    }
}

/// Flattened Adam moments and timestep, as stored in train checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First moments, concatenated in parameter order.
    pub m: Vec<f32>,
    /// Second moments, concatenated in parameter order.
    pub v: Vec<f32>,
    /// Steps taken (1-based after the first step).
    pub t: u64,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &[Tensor], lr: f32) {
        assert_eq!(grads.len(), params.len(), "gradient/param count mismatch");
        self.t += 1;
        for (i, entry) in params.iter_mut().enumerate() {
            adam_update(
                entry.tensor.data_mut(),
                grads[i].data(),
                self.m[i].data_mut(),
                self.v[i].data_mut(),
                self.t,
                lr,
                &self.hyper,
            );
        }
    }

    fn state_bytes(&self) -> u64 {
        self.m
            .iter()
            .chain(self.v.iter())
            .map(|t| t.bytes() as u64)
            .sum()
    }

    fn describe(&self) -> String {
        format!(
            "adam(b1={}, b2={}, wd={})",
            self.hyper.beta1, self.hyper.beta2, self.hyper.weight_decay
        )
    }
}

impl Drop for Adam {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.free(MemoryCategory::OptimizerState, self.state_bytes());
        }
    }
}

/// Scales `grads` in place so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads.iter().map(|g| g.norm_sq()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.scale_in_place(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params() -> ParamSet {
        let mut p = ParamSet::new();
        p.push("x", Tensor::from_vec(2usize, vec![5.0, -3.0]).unwrap());
        p
    }

    /// Gradient of f(x) = ½‖x‖²  is x itself.
    fn grad_of(params: &ParamSet) -> Vec<Tensor> {
        vec![params.tensor(0).clone()]
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut params = quadratic_params();
        let mut opt = Sgd::new(&params, 0.0, None);
        for _ in 0..50 {
            let g = grad_of(&params);
            opt.step(&mut params, &g, 0.1);
        }
        assert!(params.tensor(0).max_abs() < 0.1);
    }

    #[test]
    fn sgd_momentum_faster_than_plain_on_quadratic() {
        let run = |momentum: f32| {
            let mut params = quadratic_params();
            let mut opt = Sgd::new(&params, momentum, None);
            for _ in 0..20 {
                let g = grad_of(&params);
                opt.step(&mut params, &g, 0.05);
            }
            params.tensor(0).max_abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut params = quadratic_params();
        let mut opt = Adam::new(&params, AdamHyper::default(), None);
        for _ in 0..300 {
            let g = grad_of(&params);
            opt.step(&mut params, &g, 0.05);
        }
        assert!(params.tensor(0).max_abs() < 0.05, "{:?}", params.tensor(0));
    }

    #[test]
    fn adam_first_step_matches_reference() {
        // With g constant, the first Adam step is −lr·g/(|g| + eps·√bc2/…),
        // which for bias-corrected moments reduces to −lr·sign(g) (+O(eps)).
        let mut params = ParamSet::new();
        params.push("x", Tensor::from_vec(2usize, vec![1.0, 1.0]).unwrap());
        let mut opt = Adam::new(&params, AdamHyper::default(), None);
        let g = vec![Tensor::from_vec(2usize, vec![0.5, -2.0]).unwrap()];
        opt.step(&mut params, &g, 0.1);
        let x = params.tensor(0).data();
        assert!((x[0] - (1.0 - 0.1)).abs() < 1e-4, "{x:?}");
        assert!((x[1] - (1.0 + 0.1)).abs() < 1e-4, "{x:?}");
    }

    #[test]
    fn adamw_decays_weights() {
        let mut params = quadratic_params();
        let hyper = AdamHyper {
            weight_decay: 0.5,
            ..Default::default()
        };
        let mut opt = Adam::new(&params, hyper, None);
        // Zero gradient: only decay acts.
        let g = vec![Tensor::zeros(2usize)];
        let before = params.tensor(0).max_abs();
        opt.step(&mut params, &g, 0.1);
        assert!(params.tensor(0).max_abs() < before);
    }

    #[test]
    fn optimizer_state_bytes_tracked() {
        let params = quadratic_params();
        let tracker = MemoryTracker::new();
        {
            let opt = Adam::new(&params, AdamHyper::default(), Some(tracker.clone()));
            assert_eq!(opt.state_bytes(), 2 * params.bytes());
            assert_eq!(
                tracker.current().get(MemoryCategory::OptimizerState),
                2 * params.bytes()
            );
        }
        // Dropped → freed.
        assert_eq!(tracker.current().get(MemoryCategory::OptimizerState), 0);
    }

    #[test]
    fn sgd_without_momentum_has_no_state() {
        let params = quadratic_params();
        let opt = Sgd::new(&params, 0.0, None);
        assert_eq!(opt.state_bytes(), 0);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut grads = vec![Tensor::from_vec(2usize, vec![3.0, 4.0]).unwrap()];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = grads[0].norm_sq();
        assert!((clipped.sqrt() - 1.0).abs() < 1e-5);
        // Under the limit: untouched.
        let norm2 = clip_grad_norm(&mut grads, 10.0);
        assert!((norm2 - 1.0).abs() < 1e-5);
        assert!((grads[0].norm_sq().sqrt() - 1.0).abs() < 1e-5);
    }
}
