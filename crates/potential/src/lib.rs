//! # matgnn-potential
//!
//! A synthetic many-body interatomic potential with **analytic forces** —
//! the stand-in for the DFT labels of the paper's aggregated dataset
//! (ANI1x, QM7-X, OC2020, OC2022, MPTrj all carry DFT energies/forces).
//!
//! The functional form combines:
//!
//! * an element-dependent **Morse pair term** (bond depth grows with
//!   electronegativity difference, equilibrium length with covalent radii),
//! * an **EAM-like embedding term** `−A_i·√ρ_i` over a smooth local density
//!   `ρ_i`, which makes the energy genuinely many-body (coordination
//!   dependent) rather than a sum of pair energies,
//! * a smooth cosine cutoff so energies and forces are continuous.
//!
//! Why this preserves the paper's behaviour: the scaling-law experiments
//! need a *learnable but non-trivial* map from atomistic structure to
//! `(energy, per-atom forces)` with the same invariances as a DFT potential
//! energy surface (translation/rotation invariance of E, covariance of F,
//! permutation symmetry, element specificity, many-body effects). This
//! potential has all of those, and its analytic gradient gives exact,
//! noise-free force labels — validated against finite differences in the
//! test suite.
//!
//! ```
//! use matgnn_graph::{AtomicStructure, Element};
//! use matgnn_potential::ReferencePotential;
//!
//! let pot = ReferencePotential::default();
//! let dimer = AtomicStructure::new(
//!     vec![Element::C, Element::O],
//!     vec![[0.0, 0.0, 0.0], [1.2, 0.0, 0.0]],
//! )?;
//! let (energy, forces) = pot.energy_forces(&dimer);
//! assert!(energy < 0.0); // bonded
//! assert_eq!(forces.len(), 2);
//! # Ok::<(), matgnn_graph::StructureError>(())
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use matgnn_graph::vec3::{self, Vec3};
use matgnn_graph::{AtomicStructure, Element, NeighborList};

/// Tunable coefficients of the synthetic potential.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PotentialParams {
    /// Interaction cutoff radius (Å). Must be positive.
    pub cutoff: f64,
    /// Overall Morse well depth scale (eV).
    pub depth_scale: f64,
    /// Dimensionless Morse stiffness; the per-pair exponent is
    /// `stiffness / r0_ij`.
    pub stiffness: f64,
    /// Embedding strength prefactor (eV).
    pub embed_strength: f64,
    /// Decay rate of the embedding density contribution (1/Å).
    pub embed_decay: f64,
}

impl Default for PotentialParams {
    fn default() -> Self {
        PotentialParams {
            cutoff: 4.5,
            depth_scale: 1.8,
            stiffness: 4.0,
            embed_strength: 0.6,
            embed_decay: 1.1,
        }
    }
}

/// The synthetic reference potential.
///
/// See the crate docs for the functional form and the rationale for using
/// it as a DFT substitute.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReferencePotential {
    params: PotentialParams,
}

impl ReferencePotential {
    /// Creates a potential with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.cutoff` is not positive and finite.
    pub fn new(params: PotentialParams) -> Self {
        assert!(
            params.cutoff.is_finite() && params.cutoff > 0.0,
            "cutoff must be positive, got {}",
            params.cutoff
        );
        ReferencePotential { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PotentialParams {
        &self.params
    }

    /// Total potential energy of a structure (eV).
    pub fn energy(&self, structure: &AtomicStructure) -> f64 {
        self.energy_forces(structure).0
    }

    /// Total energy and the analytic force on every atom
    /// (`F_k = −∂E/∂x_k`, eV/Å).
    pub fn energy_forces(&self, structure: &AtomicStructure) -> (f64, Vec<Vec3>) {
        let n = structure.len();
        let mut forces = vec![[0.0f64; 3]; n];
        if n == 0 {
            return (0.0, forces);
        }
        let nl = NeighborList::build(structure, self.params.cutoff);
        let species = structure.species();

        // ---- Pair (Morse) term over undirected pairs -------------------
        let mut energy = 0.0;
        for &(i, j) in nl.edges() {
            if i >= j {
                continue; // undirected: count each pair once
            }
            let d = structure.displacement(j, i); // x_i − x_j
            let r = vec3::norm(d);
            let (e, de_dr) = self.morse(species[i], species[j], r);
            energy += e;
            // dE/dx_i = de_dr · d/r ; F_i = −dE/dx_i.
            let g = vec3::scale(d, de_dr / r);
            forces[i] = vec3::sub(forces[i], g);
            forces[j] = vec3::add(forces[j], g);
        }

        // ---- Embedding (many-body) term --------------------------------
        // ρ_i = Σ_j g(r_ij);  E_i = −A_i √(ρ_i + ε)
        const EPS: f64 = 1e-9;
        let mut rho = vec![0.0f64; n];
        for &(i, j) in nl.edges() {
            let r = structure.distance(i, j);
            rho[i] += self.density_contrib(r).0;
        }
        let mut de_drho = vec![0.0f64; n];
        for i in 0..n {
            let a = self.embed_prefactor(species[i]);
            let s = (rho[i] + EPS).sqrt();
            energy -= a * s;
            de_drho[i] = -a / (2.0 * s);
        }
        // Chain rule through ρ: each directed edge (i, j) contributes
        // g(r_ij) to ρ_i; its gradient acts on both x_i and x_j.
        for &(i, j) in nl.edges() {
            let d = structure.displacement(j, i); // x_i − x_j
            let r = vec3::norm(d);
            let (_, dg_dr) = self.density_contrib(r);
            let coeff = de_drho[i] * dg_dr / r;
            let g = vec3::scale(d, coeff);
            // dρ_i/dx_i has direction +d/r, dρ_i/dx_j the opposite.
            forces[i] = vec3::sub(forces[i], g);
            forces[j] = vec3::add(forces[j], g);
        }

        (energy, forces)
    }

    /// Forces by central finite differences (test/validation helper).
    ///
    /// O(N) energy evaluations per atom — use only on small structures.
    pub fn numerical_forces(&self, structure: &AtomicStructure, eps: f64) -> Vec<Vec3> {
        let n = structure.len();
        let mut forces = vec![[0.0f64; 3]; n];
        for a in 0..n {
            for k in 0..3 {
                let mut p = structure.positions().to_vec();
                p[a][k] += eps;
                let plus = rebuild(structure, p);
                let mut m = structure.positions().to_vec();
                m[a][k] -= eps;
                let minus = rebuild(structure, m);
                forces[a][k] = -(self.energy(&plus) - self.energy(&minus)) / (2.0 * eps);
            }
        }
        forces
    }

    // ------------------------------------------------------------------
    // Functional pieces
    // ------------------------------------------------------------------

    /// Morse pair energy and its radial derivative at distance `r`,
    /// smoothly truncated at the cutoff.
    fn morse(&self, ei: Element, ej: Element, r: f64) -> (f64, f64) {
        let rc = self.params.cutoff;
        if r >= rc {
            return (0.0, 0.0);
        }
        let r0 = ei.covalent_radius() + ej.covalent_radius();
        let depth = self.params.depth_scale
            * (1.0 + 0.4 * (ei.electronegativity() - ej.electronegativity()).abs());
        let a = self.params.stiffness / r0;
        let u = (-a * (r - r0)).exp();
        let e_m = depth * (u * u - 2.0 * u);
        let de_m = depth * (-2.0 * a * u * u + 2.0 * a * u); // d/dr
        let (fc, dfc) = cosine_cutoff(r, rc);
        (e_m * fc, de_m * fc + e_m * dfc)
    }

    /// Embedding density contribution `g(r)` and its radial derivative.
    fn density_contrib(&self, r: f64) -> (f64, f64) {
        let rc = self.params.cutoff;
        if r >= rc {
            return (0.0, 0.0);
        }
        let b = self.params.embed_decay;
        let g = (-b * r).exp();
        let dg = -b * g;
        let (fc, dfc) = cosine_cutoff(r, rc);
        (g * fc, dg * fc + g * dfc)
    }

    fn embed_prefactor(&self, e: Element) -> f64 {
        let base = self.params.embed_strength;
        if e.is_metal() {
            base * 2.0
        } else {
            base * 0.8
        }
    }
}

/// Smooth cosine cutoff `fc(r)` and its derivative: 1 at r=0, 0 at r=rc.
fn cosine_cutoff(r: f64, rc: f64) -> (f64, f64) {
    let x = std::f64::consts::PI * r / rc;
    (
        0.5 * (x.cos() + 1.0),
        -0.5 * std::f64::consts::PI / rc * x.sin(),
    )
}

fn rebuild(template: &AtomicStructure, positions: Vec<Vec3>) -> AtomicStructure {
    match template.cell() {
        Some(cell) => AtomicStructure::new_periodic(template.species().to_vec(), positions, cell)
            .expect("rebuild periodic"),
        None => AtomicStructure::new(template.species().to_vec(), positions).expect("rebuild"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_forces_match(pot: &ReferencePotential, s: &AtomicStructure, tol: f64) {
        let (_, analytic) = pot.energy_forces(s);
        let numeric = pot.numerical_forces(s, 1e-5);
        for (a, (fa, fnum)) in analytic.iter().zip(numeric.iter()).enumerate() {
            for k in 0..3 {
                assert!(
                    (fa[k] - fnum[k]).abs() < tol * (1.0 + fa[k].abs()),
                    "atom {a} component {k}: analytic {} vs numeric {}",
                    fa[k],
                    fnum[k]
                );
            }
        }
    }

    fn random_molecule(n: usize, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O, Element::S];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        // Lattice-ish placement keeps atoms from unphysical overlap.
        let positions: Vec<Vec3> = (0..n)
            .map(|i| {
                [
                    (i % 3) as f64 * 1.4 + rng.gen_range(-0.2..0.2),
                    ((i / 3) % 3) as f64 * 1.4 + rng.gen_range(-0.2..0.2),
                    (i / 9) as f64 * 1.4 + rng.gen_range(-0.2..0.2),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    #[test]
    fn dimer_has_minimum_near_r0() {
        let pot = ReferencePotential::default();
        let r0 = 2.0 * Element::C.covalent_radius();
        let e_at = |r: f64| {
            let s =
                AtomicStructure::new(vec![Element::C, Element::C], vec![[0.0; 3], [r, 0.0, 0.0]])
                    .unwrap();
            pot.energy(&s)
        };
        let mut best_r = 0.0;
        let mut best_e = f64::INFINITY;
        let mut r = 0.8;
        while r < 4.0 {
            let e = e_at(r);
            if e < best_e {
                best_e = e;
                best_r = r;
            }
            r += 0.01;
        }
        assert!(best_e < 0.0);
        assert!(
            (best_r - r0).abs() < 0.25 * r0,
            "minimum at {best_r}, r0 {r0}"
        );
    }

    #[test]
    fn energy_is_translation_invariant() {
        let pot = ReferencePotential::default();
        let s = random_molecule(8, 1);
        let mut t = s.clone();
        t.translate([5.0, -2.0, 11.0]);
        assert!((pot.energy(&s) - pot.energy(&t)).abs() < 1e-9);
    }

    #[test]
    fn energy_is_rotation_invariant_and_forces_covariant() {
        let pot = ReferencePotential::default();
        let s = random_molecule(7, 2);
        let rot = matgnn_graph::vec3::rotation_about([0.4, -1.0, 0.6], 0.9);
        let mut t = s.clone();
        t.rotate(&rot);
        let (e1, f1) = pot.energy_forces(&s);
        let (e2, f2) = pot.energy_forces(&t);
        assert!((e1 - e2).abs() < 1e-9);
        for (a, f) in f1.iter().enumerate() {
            let rf = matgnn_graph::vec3::matvec(&rot, *f);
            for k in 0..3 {
                assert!((rf[k] - f2[a][k]).abs() < 1e-8, "atom {a}");
            }
        }
    }

    #[test]
    fn analytic_forces_match_finite_differences_molecular() {
        let pot = ReferencePotential::default();
        for seed in 0..4 {
            let s = random_molecule(9, seed);
            assert_forces_match(&pot, &s, 1e-4);
        }
    }

    #[test]
    fn analytic_forces_match_finite_differences_periodic() {
        let pot = ReferencePotential::default();
        let mut rng = StdRng::seed_from_u64(9);
        let species = vec![Element::Cu; 12];
        let positions = (0..12)
            .map(|_| {
                [
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ]
            })
            .collect();
        let s = AtomicStructure::new_periodic(species, positions, [10.0; 3]).unwrap();
        assert_forces_match(&pot, &s, 1e-4);
    }

    #[test]
    fn forces_sum_to_zero_molecular() {
        // Newton's third law: no external field, so Σ F = 0.
        let pot = ReferencePotential::default();
        let s = random_molecule(10, 5);
        let (_, f) = pot.energy_forces(&s);
        let mut total = [0.0f64; 3];
        for fi in &f {
            total = vec3::add(total, *fi);
        }
        for t in total {
            assert!(t.abs() < 1e-9, "net force {total:?}");
        }
    }

    #[test]
    fn energy_extensive_in_separated_fragments() {
        // Two far-apart copies have twice the energy of one.
        let pot = ReferencePotential::default();
        let s = random_molecule(6, 6);
        let e1 = pot.energy(&s);
        let mut far = s.clone();
        far.translate([100.0, 0.0, 0.0]);
        let mut species = s.species().to_vec();
        species.extend_from_slice(far.species());
        let mut positions = s.positions().to_vec();
        positions.extend_from_slice(far.positions());
        let both = AtomicStructure::new(species, positions).unwrap();
        assert!((pot.energy(&both) - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn many_body_not_pair_decomposable() {
        // Trimer energy differs from the sum of its three pair energies —
        // evidence the embedding term is genuinely many-body.
        let pot = ReferencePotential::default();
        let p = [[0.0, 0.0, 0.0], [1.5, 0.0, 0.0], [0.75, 1.3, 0.0]];
        let e3 = pot.energy(&AtomicStructure::new(vec![Element::C; 3], p.to_vec()).unwrap());
        let pair = |a: Vec3, b: Vec3| {
            pot.energy(&AtomicStructure::new(vec![Element::C; 2], vec![a, b]).unwrap())
        };
        let e_pairs = pair(p[0], p[1]) + pair(p[0], p[2]) + pair(p[1], p[2]);
        assert!(
            (e3 - e_pairs).abs() > 1e-3,
            "potential looks pairwise: {e3} vs {e_pairs}"
        );
    }

    #[test]
    fn element_specificity() {
        let pot = ReferencePotential::default();
        let at = |a: Element, b: Element| {
            pot.energy(&AtomicStructure::new(vec![a, b], vec![[0.0; 3], [1.4, 0.0, 0.0]]).unwrap())
        };
        assert_ne!(at(Element::C, Element::C), at(Element::C, Element::O));
        assert_ne!(at(Element::C, Element::O), at(Element::Fe, Element::O));
    }

    #[test]
    fn empty_structure_zero_energy() {
        let pot = ReferencePotential::default();
        let s = AtomicStructure::new(vec![], vec![]).unwrap();
        let (e, f) = pot.energy_forces(&s);
        assert_eq!(e, 0.0);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn invalid_cutoff_panics() {
        let _ = ReferencePotential::new(PotentialParams {
            cutoff: -1.0,
            ..Default::default()
        });
    }
}
