//! Chemical elements appearing in the five synthetic data sources.
//!
//! The element set covers the compositions of the paper's aggregated
//! dataset: organics (ANI1x, QM7-X: C/H/N/O plus S/Cl/F in QM7-X), oxide
//! catalysts with adsorbates (OC2020/OC2022: transition metals + O/H/C/N),
//! and inorganic bulk materials (MPTrj).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A chemical element supported by the synthetic substrate.
///
/// The discriminant is a compact feature index (not the atomic number); use
/// [`Element::atomic_number`] for Z.
///
/// # Examples
///
/// ```
/// use matgnn_graph::Element;
///
/// assert_eq!(Element::O.atomic_number(), 8);
/// assert!(Element::Pt.is_metal());
/// assert_eq!(Element::COUNT, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Element {
    H = 0,
    C = 1,
    N = 2,
    O = 3,
    F = 4,
    S = 5,
    Cl = 6,
    Si = 7,
    Al = 8,
    Mg = 9,
    Ti = 10,
    Fe = 11,
    Ni = 12,
    Cu = 13,
    Zn = 14,
    Pt = 15,
}

impl Element {
    /// Number of supported elements (the one-hot feature width).
    pub const COUNT: usize = 16;

    /// All supported elements in feature-index order.
    pub const ALL: [Element; Element::COUNT] = [
        Element::H,
        Element::C,
        Element::N,
        Element::O,
        Element::F,
        Element::S,
        Element::Cl,
        Element::Si,
        Element::Al,
        Element::Mg,
        Element::Ti,
        Element::Fe,
        Element::Ni,
        Element::Cu,
        Element::Zn,
        Element::Pt,
    ];

    /// The dense feature index in `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Constructs an element from its feature index.
    ///
    /// Returns `None` if `index >= COUNT`.
    pub fn from_index(index: usize) -> Option<Element> {
        Element::ALL.get(index).copied()
    }

    /// The atomic number Z.
    pub fn atomic_number(self) -> u32 {
        match self {
            Element::H => 1,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::Mg => 12,
            Element::Al => 13,
            Element::Si => 14,
            Element::S => 16,
            Element::Cl => 17,
            Element::Ti => 22,
            Element::Fe => 26,
            Element::Ni => 28,
            Element::Cu => 29,
            Element::Zn => 30,
            Element::Pt => 78,
        }
    }

    /// Standard atomic mass in unified atomic mass units.
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::F => 18.998,
            Element::Mg => 24.305,
            Element::Al => 26.982,
            Element::Si => 28.085,
            Element::S => 32.06,
            Element::Cl => 35.45,
            Element::Ti => 47.867,
            Element::Fe => 55.845,
            Element::Ni => 58.693,
            Element::Cu => 63.546,
            Element::Zn => 65.38,
            Element::Pt => 195.08,
        }
    }

    /// Covalent radius in Å (Cordero 2008 values, single-bond).
    pub fn covalent_radius(self) -> f64 {
        match self {
            Element::H => 0.31,
            Element::C => 0.76,
            Element::N => 0.71,
            Element::O => 0.66,
            Element::F => 0.57,
            Element::Mg => 1.41,
            Element::Al => 1.21,
            Element::Si => 1.11,
            Element::S => 1.05,
            Element::Cl => 1.02,
            Element::Ti => 1.60,
            Element::Fe => 1.32,
            Element::Ni => 1.24,
            Element::Cu => 1.32,
            Element::Zn => 1.22,
            Element::Pt => 1.36,
        }
    }

    /// Pauling electronegativity (used by the synthetic potential to make
    /// pair interactions element-dependent).
    pub fn electronegativity(self) -> f64 {
        match self {
            Element::H => 2.20,
            Element::C => 2.55,
            Element::N => 3.04,
            Element::O => 3.44,
            Element::F => 3.98,
            Element::Mg => 1.31,
            Element::Al => 1.61,
            Element::Si => 1.90,
            Element::S => 2.58,
            Element::Cl => 3.16,
            Element::Ti => 1.54,
            Element::Fe => 1.83,
            Element::Ni => 1.91,
            Element::Cu => 1.90,
            Element::Zn => 1.65,
            Element::Pt => 2.28,
        }
    }

    /// Whether the element is a metal in this set.
    pub fn is_metal(self) -> bool {
        matches!(
            self,
            Element::Mg
                | Element::Al
                | Element::Ti
                | Element::Fe
                | Element::Ni
                | Element::Cu
                | Element::Zn
                | Element::Pt
        )
    }

    /// The element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::S => "S",
            Element::Cl => "Cl",
            Element::Si => "Si",
            Element::Al => "Al",
            Element::Mg => "Mg",
            Element::Ti => "Ti",
            Element::Fe => "Fe",
            Element::Ni => "Ni",
            Element::Cu => "Cu",
            Element::Zn => "Zn",
            Element::Pt => "Pt",
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, &e) in Element::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert_eq!(Element::from_index(i), Some(e));
        }
        assert_eq!(Element::from_index(Element::COUNT), None);
    }

    #[test]
    fn atomic_numbers_strictly_ordered_within_period_set() {
        // Distinct elements must have distinct atomic numbers.
        let mut zs: Vec<u32> = Element::ALL.iter().map(|e| e.atomic_number()).collect();
        zs.sort_unstable();
        zs.dedup();
        assert_eq!(zs.len(), Element::COUNT);
    }

    #[test]
    fn physical_data_in_plausible_range() {
        for &e in &Element::ALL {
            assert!(e.mass() > 0.9 && e.mass() < 250.0, "{e} mass");
            assert!(
                e.covalent_radius() > 0.2 && e.covalent_radius() < 2.0,
                "{e} radius"
            );
            assert!(
                e.electronegativity() > 0.5 && e.electronegativity() < 4.5,
                "{e} EN"
            );
        }
    }

    #[test]
    fn metals_classified() {
        assert!(Element::Fe.is_metal());
        assert!(!Element::C.is_metal());
        assert_eq!(Element::ALL.iter().filter(|e| e.is_metal()).count(), 8);
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Element::Cl.to_string(), "Cl");
        assert_eq!(Element::Pt.to_string(), "Pt");
    }
}
