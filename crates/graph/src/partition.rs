//! Deterministic spatial domain decomposition for graph parallelism.
//!
//! A [`PartitionPlan`] splits one structure's atoms into `n_parts`
//! **virtual parts** — equal-count slabs along the structure's longest
//! axis — each with a **ghost halo**: every cutoff-radius neighbor owned
//! by another part. Ranks execute contiguous runs of parts, so the plan
//! itself never depends on the world size; this is what makes the
//! graph-parallel trajectory invariant to the number of ranks (see
//! DESIGN.md §7.9).
//!
//! The plan renumbers atoms by their coordinate along the slab axis
//! (ties broken by original index), so each part owns a **contiguous
//! global index range**. That makes owner lookup O(1), halo messages
//! contiguous row blocks, and the concatenation of per-part outputs in
//! ascending part order exactly the global node order — the property the
//! bitwise energy reduction relies on.
//!
//! Determinism: the same structure, cutoff, and part count always
//! produce the same plan; the renumbering permutation depends only on
//! the structure (not on `n_parts`), so the union of owned atoms — and
//! every per-atom quantity — is invariant to how many parts (or ranks)
//! execute it.

use crate::{AtomicStructure, Element, MolGraph, NeighborList};

/// One part's local subdomain: its owned atoms plus the ghost halo.
#[derive(Debug, Clone, PartialEq)]
pub struct PartDomain {
    part: usize,
    owned_start: usize,
    owned_end: usize,
    /// Global (renumbered) ids of ghost atoms, ascending.
    ghosts: Vec<usize>,
    /// Local graph: nodes are `owned ++ ghosts` (each block ascending),
    /// edges are exactly the global edges whose source is owned, in
    /// global `(src, dst)` order, re-indexed to local node ids.
    graph: MolGraph,
}

impl PartDomain {
    /// This part's index in the plan.
    pub fn part(&self) -> usize {
        self.part
    }

    /// The half-open global (renumbered) id range this part owns.
    pub fn owned_range(&self) -> (usize, usize) {
        (self.owned_start, self.owned_end)
    }

    /// Number of atoms this part owns.
    pub fn n_owned(&self) -> usize {
        self.owned_end - self.owned_start
    }

    /// Global (renumbered) ids of the ghost atoms, ascending.
    pub fn ghosts(&self) -> &[usize] {
        &self.ghosts
    }

    /// Total local nodes (owned + ghosts).
    pub fn n_local(&self) -> usize {
        self.n_owned() + self.ghosts.len()
    }

    /// Ghost atoms as a fraction of owned atoms (the halo overhead).
    pub fn ghost_fraction(&self) -> f64 {
        if self.n_owned() == 0 {
            0.0
        } else {
            self.ghosts.len() as f64 / self.n_owned() as f64
        }
    }

    /// The local subgraph (owned nodes first, then ghosts).
    pub fn graph(&self) -> &MolGraph {
        &self.graph
    }

    /// Maps a global (renumbered) id to this part's local node id, if
    /// the atom is present locally (owned or ghost).
    pub fn local_index(&self, global: usize) -> Option<usize> {
        if global >= self.owned_start && global < self.owned_end {
            return Some(global - self.owned_start);
        }
        self.ghosts
            .binary_search(&global)
            .ok()
            .map(|g| self.n_owned() + g)
    }
}

/// A deterministic slab decomposition of one structure into virtual
/// parts with ghost halos.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    n_parts: usize,
    cutoff: f64,
    axis: usize,
    /// `perm[new] = original` atom index of the spatial renumbering.
    perm: Vec<usize>,
    /// Renumbered structure (atoms sorted along `axis`).
    structure: AtomicStructure,
    /// `offsets[p]..offsets[p+1]` is part `p`'s owned id range.
    offsets: Vec<usize>,
    parts: Vec<PartDomain>,
    n_edges: usize,
}

/// The contiguous run of parts rank `rank` of `world` executes, as a
/// half-open range. Mirrors the ceil-chunk convention of
/// `matgnn_dist::shard_range` so trailing ranks may be empty.
pub fn parts_for_rank(n_parts: usize, world: usize, rank: usize) -> (usize, usize) {
    assert!(world > 0, "world must be positive");
    assert!(rank < world, "rank {rank} out of range for world {world}");
    let chunk = n_parts.div_ceil(world);
    let start = (rank * chunk).min(n_parts);
    let end = ((rank + 1) * chunk).min(n_parts);
    (start, end)
}

impl PartitionPlan {
    /// Builds the plan: sort atoms along the longest axis, split into
    /// `n_parts` equal-count slabs, and compute each part's ghost halo
    /// from the cutoff-radius neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if `n_parts` is zero or exceeds the atom count, or on the
    /// same cutoff violations as [`NeighborList::build`].
    pub fn build(structure: &AtomicStructure, cutoff: f64, n_parts: usize) -> Self {
        assert!(n_parts > 0, "n_parts must be positive");
        let n = structure.len();
        assert!(
            n_parts <= n.max(1),
            "cannot split {n} atoms into {n_parts} parts"
        );

        let axis = slab_axis(structure);
        // Stable spatial sort: coordinate along the slab axis, original
        // index as the tie-break. The permutation depends only on the
        // structure, never on n_parts.
        let mut perm: Vec<usize> = (0..n).collect();
        let pos = structure.positions();
        perm.sort_by(|&a, &b| {
            pos[a][axis]
                .partial_cmp(&pos[b][axis])
                .expect("non-finite coordinate")
                .then(a.cmp(&b))
        });
        let species: Vec<Element> = perm.iter().map(|&i| structure.species()[i]).collect();
        let positions: Vec<[f64; 3]> = perm.iter().map(|&i| pos[i]).collect();
        let renumbered = match structure.cell() {
            Some(cell) => AtomicStructure::new_periodic(species, positions, cell),
            None => AtomicStructure::new(species, positions),
        }
        .expect("renumbering preserves validity");

        // Equal-count slabs via the ceil-chunk convention (matches
        // shard_range, so part and rank splits compose predictably).
        let chunk = n.div_ceil(n_parts);
        let offsets: Vec<usize> = (0..=n_parts).map(|p| (p * chunk).min(n)).collect();
        let owner = |g: usize| (g / chunk).min(n_parts - 1);

        // One global neighbor list; every part slices the same edge
        // list, so local edge order is the global order restricted to
        // owned sources — the property per-row scatter parity needs.
        let nl = NeighborList::build(&renumbered, cutoff);
        let global = MolGraph::from_structure_with_neighbors(&renumbered, &nl);
        let (gsrc, gdst, gvec) = (global.src(), global.dst(), global.edge_vectors());

        let mut parts = Vec::with_capacity(n_parts);
        for p in 0..n_parts {
            let (s, e) = (offsets[p], offsets[p + 1]);
            let mut ghosts: Vec<usize> = Vec::new();
            let mut edges: Vec<(usize, usize, [f64; 3])> = Vec::new();
            for k in 0..gsrc.len() {
                if gsrc[k] >= s && gsrc[k] < e {
                    edges.push((gsrc[k], gdst[k], gvec[k]));
                    if gdst[k] < s || gdst[k] >= e {
                        ghosts.push(gdst[k]);
                    }
                }
            }
            ghosts.sort_unstable();
            ghosts.dedup();
            let n_owned = e - s;
            let local_of = |g: usize| -> usize {
                if g >= s && g < e {
                    g - s
                } else {
                    n_owned + ghosts.binary_search(&g).expect("ghost present")
                }
            };
            let local_species: Vec<Element> = (s..e)
                .chain(ghosts.iter().copied())
                .map(|g| renumbered.species()[g])
                .collect();
            let local_src: Vec<usize> = edges.iter().map(|&(a, _, _)| local_of(a)).collect();
            let local_dst: Vec<usize> = edges.iter().map(|&(_, b, _)| local_of(b)).collect();
            let local_vec: Vec<[f64; 3]> = edges.iter().map(|&(_, _, v)| v).collect();
            let graph = MolGraph::from_parts(local_species, local_src, local_dst, local_vec);
            debug_assert_eq!(owner(s.min(n.saturating_sub(1))), p.min(n_parts - 1));
            parts.push(PartDomain {
                part: p,
                owned_start: s,
                owned_end: e,
                ghosts,
                graph,
            });
        }

        PartitionPlan {
            n_parts,
            cutoff,
            axis,
            perm,
            structure: renumbered,
            offsets,
            parts,
            n_edges: global.n_edges(),
        }
    }

    /// Number of virtual parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Total atoms across all parts.
    pub fn n_nodes(&self) -> usize {
        self.structure.len()
    }

    /// Total directed edges in the global graph.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The cutoff radius the halos were built for.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The axis (0/1/2) the slabs were cut along.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The renumbering permutation: `perm()[new] = original` index.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The spatially renumbered structure all global ids refer to.
    pub fn structure(&self) -> &AtomicStructure {
        &self.structure
    }

    /// Owned-range offsets: part `p` owns `offsets()[p]..offsets()[p+1]`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The part owning a global (renumbered) atom id.
    pub fn owner_part(&self, global: usize) -> usize {
        assert!(global < self.n_nodes(), "atom id out of range");
        let chunk = self.offsets[1] - self.offsets[0];
        (global / chunk.max(1)).min(self.n_parts - 1)
    }

    /// The subdomain of part `p`.
    pub fn part(&self, p: usize) -> &PartDomain {
        &self.parts[p]
    }

    /// All subdomains, ascending by part.
    pub fn parts(&self) -> &[PartDomain] {
        &self.parts
    }

    /// The half-open global id range owned by ranks `[r0, r1)` of a
    /// `world`-rank execution (contiguous because parts are contiguous).
    pub fn node_range_for_rank(&self, world: usize, rank: usize) -> (usize, usize) {
        let (p0, p1) = parts_for_rank(self.n_parts, world, rank);
        (self.offsets[p0], self.offsets[p1])
    }

    /// Total ghost atoms summed over parts (atoms replicated in halos).
    pub fn total_ghosts(&self) -> usize {
        self.parts.iter().map(|p| p.ghosts.len()).sum()
    }
}

/// The axis with the largest spatial extent (box length when periodic,
/// bounding-box extent otherwise); ties break toward the lower axis.
fn slab_axis(structure: &AtomicStructure) -> usize {
    let extent: [f64; 3] = match structure.cell() {
        Some(cell) => cell,
        None => {
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for p in structure.positions() {
                for k in 0..3 {
                    lo[k] = lo[k].min(p[k]);
                    hi[k] = hi[k].max(p[k]);
                }
            }
            [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]]
        }
    };
    let mut axis = 0;
    for k in 1..3 {
        if extent[k] > extent[axis] {
            axis = k;
        }
    }
    axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A perturbed lattice elongated along x — several cutoff radii
    /// long, so multi-part splits have genuinely local halos.
    fn slab_structure(n: usize, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i / 4) as f64 * 1.1 + rng.gen_range(-0.25..0.25),
                    ((i % 4) / 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                    (i % 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    #[test]
    fn every_atom_owned_by_exactly_one_part() {
        let s = slab_structure(40, 3);
        for n_parts in [1, 2, 3, 4, 7] {
            let plan = PartitionPlan::build(&s, 2.5, n_parts);
            let mut owned = vec![0usize; s.len()];
            for part in plan.parts() {
                let (a, b) = part.owned_range();
                for (g, count) in owned.iter_mut().enumerate().take(b).skip(a) {
                    *count += 1;
                    assert_eq!(plan.owner_part(g), part.part());
                }
            }
            assert!(owned.iter().all(|&c| c == 1), "n_parts={n_parts}");
            // Offsets tile [0, n] monotonically.
            assert_eq!(plan.offsets()[0], 0);
            assert_eq!(*plan.offsets().last().unwrap(), s.len());
        }
    }

    #[test]
    fn ghosts_match_brute_force_cross_part_neighbors() {
        let s = slab_structure(36, 5);
        let cutoff = 2.5;
        let plan = PartitionPlan::build(&s, cutoff, 4);
        // Brute-force reference on the *renumbered* structure.
        let nl = NeighborList::build_brute_force(plan.structure(), cutoff);
        for part in plan.parts() {
            let (a, b) = part.owned_range();
            let mut expect: Vec<usize> = nl
                .edges()
                .iter()
                .filter(|&&(i, j)| i >= a && i < b && !(j >= a && j < b))
                .map(|&(_, j)| j)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(part.ghosts(), &expect[..], "part {}", part.part());
        }
    }

    #[test]
    fn plan_is_deterministic_and_perm_ignores_part_count() {
        let s = slab_structure(32, 7);
        let p1 = PartitionPlan::build(&s, 2.5, 4);
        let p2 = PartitionPlan::build(&s, 2.5, 4);
        assert_eq!(p1, p2);
        // The renumbering is a function of the structure only, so the
        // owned-atom union (in original ids) is the same for any split.
        for n_parts in [1, 2, 3, 8] {
            let q = PartitionPlan::build(&s, 2.5, n_parts);
            assert_eq!(q.perm(), p1.perm(), "n_parts={n_parts}");
            let mut originals: Vec<usize> = q
                .parts()
                .iter()
                .flat_map(|part| {
                    let (a, b) = part.owned_range();
                    (a..b).map(|g| q.perm()[g])
                })
                .collect();
            originals.sort_unstable();
            let all: Vec<usize> = (0..s.len()).collect();
            assert_eq!(originals, all, "n_parts={n_parts}");
        }
    }

    #[test]
    fn local_edges_are_global_owned_src_edges_in_order() {
        let s = slab_structure(36, 9);
        let plan = PartitionPlan::build(&s, 2.5, 3);
        let global = MolGraph::from_structure(plan.structure(), plan.cutoff());
        for part in plan.parts() {
            let (a, b) = part.owned_range();
            let expect: Vec<(usize, usize)> = global
                .src()
                .iter()
                .zip(global.dst())
                .filter(|&(&i, _)| i >= a && i < b)
                .map(|(&i, &j)| (i, j))
                .collect();
            let n_owned = part.n_owned();
            let g = part.graph();
            assert_eq!(g.n_edges(), expect.len());
            for (k, &(gi, gj)) in expect.iter().enumerate() {
                assert_eq!(g.src()[k], gi - a, "sources are owned and local");
                assert_eq!(part.local_index(gj), Some(g.dst()[k]));
            }
            // Ghost nodes never source an edge: all their out-edges
            // live in the owner's part, which is what keeps local
            // source degrees equal to global ones.
            assert!(g.src().iter().all(|&l| l < n_owned));
            for (k, &l) in g.src().iter().enumerate() {
                let global_deg = global.src().iter().filter(|&&x| x == l + a).count();
                let local_deg = g.src().iter().filter(|&&x| x == l).count();
                assert_eq!(global_deg, local_deg, "edge {k}");
            }
        }
    }

    #[test]
    fn periodic_structure_partitions_along_longest_cell_axis() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 48;
        let species = vec![Element::Cu; n];
        let positions: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(0.0..18.0),
                    rng.gen_range(0.0..6.0),
                    rng.gen_range(0.0..6.0),
                ]
            })
            .collect();
        let s = AtomicStructure::new_periodic(species, positions, [18.0, 6.0, 6.0]).unwrap();
        let plan = PartitionPlan::build(&s, 2.0, 4);
        assert_eq!(plan.axis(), 0);
        // Minimum-image ghosts across the wrap are still found: the
        // first and last slabs can ghost each other.
        let total: usize = plan.total_ghosts();
        assert!(total > 0, "periodic halos must not be empty");
    }

    #[test]
    fn rank_part_runs_tile_the_parts() {
        for (n_parts, world) in [(4, 2), (4, 4), (5, 2), (3, 4), (8, 3)] {
            let mut seen = vec![0usize; n_parts];
            for r in 0..world {
                let (a, b) = parts_for_rank(n_parts, world, r);
                for count in seen.iter_mut().take(b).skip(a) {
                    *count += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "n_parts={n_parts} world={world}"
            );
        }
    }

    #[test]
    fn single_part_plan_is_the_whole_graph() {
        let s = slab_structure(20, 13);
        let plan = PartitionPlan::build(&s, 2.5, 1);
        let part = plan.part(0);
        assert_eq!(part.n_owned(), 20);
        assert!(part.ghosts().is_empty());
        let global = MolGraph::from_structure(plan.structure(), 2.5);
        assert_eq!(part.graph().src(), global.src());
        assert_eq!(part.graph().dst(), global.dst());
        assert_eq!(part.graph().n_edges(), plan.n_edges());
    }
}
