//! Disjoint-union batching of molecular graphs into tensor form.
//!
//! Training processes many graphs per step; a [`GraphBatch`] concatenates
//! them into one big graph whose edges never cross graph boundaries, with
//! index arrays mapping nodes back to their source graph for pooling.

use std::sync::Arc;

use matgnn_tensor::Tensor;

use crate::molgraph::NODE_FEAT_DIM;
use crate::MolGraph;

/// A batch of molecular graphs as one disjoint union, in tensor form.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
///
/// let s = AtomicStructure::new(
///     vec![Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [0.8, 0.0, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 1.0);
/// let batch = GraphBatch::from_graphs(&[&g, &g]);
/// assert_eq!(batch.n_graphs(), 2);
/// assert_eq!(batch.n_nodes(), 4);
/// // Second copy's edges are offset by the first copy's node count.
/// assert_eq!(batch.src()[2], 2);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBatch {
    n_graphs: usize,
    node_counts: Vec<usize>,
    src: Arc<Vec<usize>>,
    dst: Arc<Vec<usize>>,
    node_graph: Arc<Vec<usize>>,
    node_feats: Tensor,
    edge_vectors: Tensor,
    inv_src_degree: Tensor,
    inv_node_counts: Tensor,
}

impl GraphBatch {
    /// Builds the disjoint union of `graphs`.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    pub fn from_graphs(graphs: &[&MolGraph]) -> Self {
        assert!(!graphs.is_empty(), "empty graph batch");
        let n_nodes: usize = graphs.iter().map(|g| g.n_nodes()).sum();
        let n_edges: usize = graphs.iter().map(|g| g.n_edges()).sum();

        let mut src = Vec::with_capacity(n_edges);
        let mut dst = Vec::with_capacity(n_edges);
        let mut node_graph = Vec::with_capacity(n_nodes);
        let mut node_counts = Vec::with_capacity(graphs.len());
        let mut feats = Vec::with_capacity(n_nodes * NODE_FEAT_DIM);
        let mut edge_vecs = Vec::with_capacity(n_edges * 3);

        let mut node_offset = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            for &s in g.src() {
                src.push(s + node_offset);
            }
            for &d in g.dst() {
                dst.push(d + node_offset);
            }
            node_graph.extend(std::iter::repeat_n(gi, g.n_nodes()));
            node_counts.push(g.n_nodes());
            feats.extend_from_slice(&g.node_features_flat());
            edge_vecs.extend_from_slice(&g.edge_vectors_flat());
            node_offset += g.n_nodes();
        }

        let node_feats =
            Tensor::from_vec((n_nodes, NODE_FEAT_DIM), feats).expect("node feature buffer length");
        let edge_vectors =
            Tensor::from_vec((n_edges, 3), edge_vecs).expect("edge vector buffer length");

        // Precompute 1/out-degree once per batch: the EGNN coordinate
        // channel needs it in every layer of every forward pass.
        let mut deg = vec![0.0f32; n_nodes];
        for &s in &src {
            deg[s] += 1.0;
        }
        for d in &mut deg {
            if *d > 0.0 {
                *d = 1.0 / *d;
            }
        }
        let inv_src_degree = Tensor::from_vec((n_nodes, 1), deg).expect("inv degree length");

        // Likewise 1/node-count, used by mean pooling on every forward.
        let mut inv_counts = Vec::with_capacity(graphs.len());
        for &c in &node_counts {
            inv_counts.push(1.0 / c.max(1) as f32);
        }
        let inv_node_counts =
            Tensor::from_vec((graphs.len(), 1), inv_counts).expect("inv node count length");

        GraphBatch {
            n_graphs: graphs.len(),
            node_counts,
            src: Arc::new(src),
            dst: Arc::new(dst),
            node_graph: Arc::new(node_graph),
            node_feats,
            edge_vectors,
            inv_src_degree,
            inv_node_counts,
        }
    }

    /// Number of graphs in the batch.
    pub fn n_graphs(&self) -> usize {
        self.n_graphs
    }

    /// Total nodes across the batch.
    pub fn n_nodes(&self) -> usize {
        self.node_graph.len()
    }

    /// Total directed edges across the batch.
    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    /// Node count of each constituent graph.
    pub fn node_counts(&self) -> &[usize] {
        &self.node_counts
    }

    /// Batch-global source index of each edge (shared for tape ops).
    pub fn src(&self) -> &Arc<Vec<usize>> {
        &self.src
    }

    /// Batch-global destination index of each edge.
    pub fn dst(&self) -> &Arc<Vec<usize>> {
        &self.dst
    }

    /// Graph index of each node (for pooling).
    pub fn node_graph(&self) -> &Arc<Vec<usize>> {
        &self.node_graph
    }

    /// Node features `[n_nodes × NODE_FEAT_DIM]`.
    pub fn node_feats(&self) -> &Tensor {
        &self.node_feats
    }

    /// Edge relative vectors `[n_edges × 3]`.
    pub fn edge_vectors(&self) -> &Tensor {
        &self.edge_vectors
    }

    /// A `[n_nodes × 1]` tensor of `1 / out-degree` per node (0 for
    /// isolated atoms), precomputed at batch build time for the EGNN
    /// coordinate channel's mean aggregation.
    pub fn inv_src_degree(&self) -> &Tensor {
        &self.inv_src_degree
    }

    /// A `[n_graphs × 1]` tensor of `1 / node_count` per graph, for mean
    /// pooling node sums into graph means. Precomputed at batch build time;
    /// the clone shares the underlying buffer.
    pub fn inv_node_counts(&self) -> Tensor {
        self.inv_node_counts.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicStructure, Element};

    fn chain(n: usize, spacing: f64) -> MolGraph {
        let species = vec![Element::C; n];
        let positions = (0..n).map(|i| [i as f64 * spacing, 0.0, 0.0]).collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        MolGraph::from_structure(&s, spacing * 1.1)
    }

    #[test]
    fn batching_offsets_edges() {
        let g1 = chain(3, 1.0); // edges: (0,1),(1,0),(1,2),(2,1)
        let g2 = chain(2, 1.0); // edges: (0,1),(1,0) → offset by 3
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        assert_eq!(b.n_nodes(), 5);
        assert_eq!(b.n_edges(), 6);
        assert_eq!(&b.src()[4..], &[3, 4]);
        assert_eq!(&b.dst()[4..], &[4, 3]);
    }

    #[test]
    fn node_graph_assignment() {
        let g1 = chain(3, 1.0);
        let g2 = chain(2, 1.0);
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        assert_eq!(b.node_graph().as_slice(), &[0, 0, 0, 1, 1]);
        assert_eq!(b.node_counts(), &[3, 2]);
    }

    #[test]
    fn edges_stay_within_graph() {
        let g1 = chain(4, 1.0);
        let g2 = chain(5, 1.0);
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        for k in 0..b.n_edges() {
            let (s, d) = (b.src()[k], b.dst()[k]);
            assert_eq!(
                b.node_graph()[s],
                b.node_graph()[d],
                "edge {k} crosses graphs"
            );
        }
    }

    #[test]
    fn features_concatenated_in_order() {
        let g1 = chain(2, 1.0);
        let g2 = chain(3, 1.0);
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        assert_eq!(b.node_feats().rows(), 5);
        assert_eq!(b.node_feats().cols(), NODE_FEAT_DIM);
        assert_eq!(b.edge_vectors().rows(), b.n_edges());
    }

    #[test]
    fn inv_node_counts() {
        let g1 = chain(2, 1.0);
        let g2 = chain(4, 1.0);
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        let inv = b.inv_node_counts();
        assert_eq!(inv.data(), &[0.5, 0.25]);
    }

    #[test]
    fn inv_src_degree_matches_edge_counts() {
        let g1 = chain(3, 1.0); // degrees 1, 2, 1
        let g2 = chain(2, 1.0); // degrees 1, 1
        let b = GraphBatch::from_graphs(&[&g1, &g2]);
        assert_eq!(b.inv_src_degree().data(), &[1.0, 0.5, 1.0, 1.0, 1.0]);
        // Isolated atoms (no edges within cutoff) get 0, not 1/0.
        let s = AtomicStructure::new(vec![Element::C; 2], vec![[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
            .unwrap();
        let far = MolGraph::from_structure(&s, 1.0);
        let b = GraphBatch::from_graphs(&[&far]);
        assert_eq!(b.inv_src_degree().data(), &[0.0, 0.0]);
    }

    #[test]
    fn single_graph_batch_is_identity() {
        let g = chain(4, 1.0);
        let b = GraphBatch::from_graphs(&[&g]);
        assert_eq!(b.n_nodes(), g.n_nodes());
        assert_eq!(b.src().as_slice(), g.src());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_batch_panics() {
        let _ = GraphBatch::from_graphs(&[]);
    }
}
