//! Neighbor search: which atom pairs are within the interaction cutoff.
//!
//! Two implementations are provided: an O(N²) brute-force reference and an
//! O(N) cell-list search (the production path). Property tests assert they
//! agree on random structures, both molecular and periodic.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use matgnn_tensor::pool;

use crate::vec3;
use crate::AtomicStructure;

/// A directed edge list of atom pairs within a cutoff radius.
///
/// Edges are stored in both directions (`i→j` and `j→i`) because message
/// passing is directional; self-edges are excluded. Edges are sorted by
/// `(src, dst)` so construction is deterministic.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, NeighborList};
///
/// let s = AtomicStructure::new(
///     vec![Element::H, Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [5.0, 0.0, 0.0]],
/// )?;
/// let nl = NeighborList::build(&s, 2.0);
/// // Atoms 0 and 1 are bonded; atom 2 is isolated.
/// assert_eq!(nl.edges(), &[(0, 1), (1, 0)]);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborList {
    edges: Vec<(usize, usize)>,
}

impl NeighborList {
    /// Builds the neighbor list with a cell-list (linked-cell) search.
    ///
    /// Falls back to the brute-force search when the cell decomposition
    /// would be degenerate (fewer than 3 cells along a periodic axis, or
    /// very small systems where binning cannot win).
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is not finite and positive, or if the structure
    /// is periodic and `cutoff` exceeds half the shortest box length (the
    /// minimum-image convention would silently miss images otherwise).
    pub fn build(structure: &AtomicStructure, cutoff: f64) -> Self {
        validate_cutoff(structure, cutoff);
        let n = structure.len();
        if n < 32 {
            return Self::brute_force_impl(structure, cutoff);
        }
        match structure.cell() {
            Some(cell) => {
                let cells_per_dim: [usize; 3] =
                    [0, 1, 2].map(|k| (cell[k] / cutoff).floor() as usize);
                if cells_per_dim.iter().any(|&c| c < 3) {
                    Self::brute_force_impl(structure, cutoff)
                } else {
                    Self::build_cell_list_periodic(structure, cutoff, cell, cells_per_dim)
                }
            }
            None => Self::build_cell_list_open(structure, cutoff),
        }
    }

    /// Builds the neighbor list by checking all O(N²) pairs — the reference
    /// implementation the cell list is tested against.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NeighborList::build`].
    pub fn build_brute_force(structure: &AtomicStructure, cutoff: f64) -> Self {
        validate_cutoff(structure, cutoff);
        Self::brute_force_impl(structure, cutoff)
    }

    /// Brute-force body, shared with the fallback in [`NeighborList::build`]
    /// so the cutoff is only validated once per public entry point.
    fn brute_force_impl(structure: &AtomicStructure, cutoff: f64) -> Self {
        let n = structure.len();
        let c2 = cutoff * cutoff;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = structure.displacement(i, j);
                if vec3::norm_sq(d) <= c2 {
                    edges.push((i, j));
                    edges.push((j, i));
                }
            }
        }
        edges.sort_unstable();
        NeighborList { edges }
    }

    /// Runs `scan(i, out)` for every atom index, in parallel over the worker
    /// pool, and returns the per-atom edge runs concatenated in atom order.
    ///
    /// The concatenation makes the output independent of how the pool split
    /// the index range, so cell-list builds stay bitwise identical to their
    /// serial form for any `MATGNN_THREADS`.
    fn scan_atoms(
        n: usize,
        per_atom_cap: usize,
        scan: impl Fn(usize, &mut Vec<(usize, usize)>) + Sync,
    ) -> Vec<(usize, usize)> {
        type EdgeRun = (usize, Vec<(usize, usize)>);
        let runs: Mutex<Vec<EdgeRun>> = Mutex::new(Vec::new());
        // Granule 1: atoms are the natural work unit and any granule must
        // divide the atom count exactly.
        pool::parallel_ranges(n, 1, |r| {
            let mut local = Vec::with_capacity(per_atom_cap * r.len());
            for i in r.clone() {
                scan(i, &mut local);
            }
            runs.lock().unwrap().push((r.start, local));
        });
        let mut runs = runs.into_inner().unwrap();
        runs.sort_unstable_by_key(|&(start, _)| start);
        let mut edges = Vec::with_capacity(per_atom_cap * n);
        for (_, mut run) in runs {
            edges.append(&mut run);
        }
        edges
    }

    /// Expected directed neighbors per atom for a uniform density, padded by
    /// a 1.5× safety factor so the edge `Vec` rarely regrows.
    fn neighbors_per_atom(n: usize, volume: f64, cutoff: f64) -> usize {
        let density = n as f64 / volume.max(f64::MIN_POSITIVE);
        let sphere = 4.0 / 3.0 * std::f64::consts::PI * cutoff.powi(3);
        ((density * sphere * 1.5) as usize).max(4)
    }

    fn build_cell_list_open(structure: &AtomicStructure, cutoff: f64) -> Self {
        let pos = structure.positions();
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in pos {
            for k in 0..3 {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        let mut dims = [0usize; 3];
        for k in 0..3 {
            dims[k] = (((hi[k] - lo[k]) / cutoff).floor() as usize + 1).max(1);
        }
        let cell_of = |p: &vec3::Vec3| -> [usize; 3] {
            let mut c = [0usize; 3];
            for k in 0..3 {
                c[k] = (((p[k] - lo[k]) / cutoff) as usize).min(dims[k] - 1);
            }
            c
        };
        let flat = |c: [usize; 3]| c[0] * dims[1] * dims[2] + c[1] * dims[2] + c[2];
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        for (i, p) in pos.iter().enumerate() {
            bins[flat(cell_of(p))].push(i);
        }
        let c2 = cutoff * cutoff;
        let volume: f64 = (0..3).map(|k| (hi[k] - lo[k]).max(cutoff)).product();
        let per_atom = Self::neighbors_per_atom(pos.len(), volume, cutoff);
        let mut edges = Self::scan_atoms(pos.len(), per_atom, |i, out| {
            let p = &pos[i];
            let c = cell_of(p);
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nx = c[0] as i64 + dx;
                        let ny = c[1] as i64 + dy;
                        let nz = c[2] as i64 + dz;
                        if nx < 0
                            || ny < 0
                            || nz < 0
                            || nx >= dims[0] as i64
                            || ny >= dims[1] as i64
                            || nz >= dims[2] as i64
                        {
                            continue;
                        }
                        for &j in &bins[flat([nx as usize, ny as usize, nz as usize])] {
                            if j != i && vec3::norm_sq(vec3::sub(pos[j], *p)) <= c2 {
                                out.push((i, j));
                            }
                        }
                    }
                }
            }
        });
        edges.sort_unstable();
        NeighborList { edges }
    }

    fn build_cell_list_periodic(
        structure: &AtomicStructure,
        cutoff: f64,
        cell: vec3::Vec3,
        dims: [usize; 3],
    ) -> Self {
        let pos = structure.positions();
        let wrap = |x: f64, l: f64| -> f64 {
            let w = x % l;
            if w < 0.0 {
                w + l
            } else {
                w
            }
        };
        let cell_of = |p: &vec3::Vec3| -> [usize; 3] {
            let mut c = [0usize; 3];
            for k in 0..3 {
                let w = wrap(p[k], cell[k]);
                c[k] = ((w / cell[k] * dims[k] as f64) as usize).min(dims[k] - 1);
            }
            c
        };
        let flat = |c: [usize; 3]| c[0] * dims[1] * dims[2] + c[1] * dims[2] + c[2];
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        for (i, p) in pos.iter().enumerate() {
            bins[flat(cell_of(p))].push(i);
        }
        let c2 = cutoff * cutoff;
        let volume = cell[0] * cell[1] * cell[2];
        let per_atom = Self::neighbors_per_atom(pos.len(), volume, cutoff);
        let mut edges = Self::scan_atoms(pos.len(), per_atom, |i, out| {
            let p = &pos[i];
            let c = cell_of(p);
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nc = [
                            ((c[0] as i64 + dx).rem_euclid(dims[0] as i64)) as usize,
                            ((c[1] as i64 + dy).rem_euclid(dims[1] as i64)) as usize,
                            ((c[2] as i64 + dz).rem_euclid(dims[2] as i64)) as usize,
                        ];
                        for &j in &bins[flat(nc)] {
                            if j == i {
                                continue;
                            }
                            let mut d = vec3::sub(pos[j], *p);
                            for k in 0..3 {
                                d[k] -= (d[k] / cell[k]).round() * cell[k];
                            }
                            if vec3::norm_sq(d) <= c2 {
                                out.push((i, j));
                            }
                        }
                    }
                }
            }
        });
        edges.sort_unstable();
        edges.dedup();
        NeighborList { edges }
    }

    /// The directed `(src, dst)` edges, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Splits the edges into parallel `src` / `dst` index arrays.
    pub fn to_src_dst(&self) -> (Vec<usize>, Vec<usize>) {
        let mut src = Vec::with_capacity(self.edges.len());
        let mut dst = Vec::with_capacity(self.edges.len());
        for &(i, j) in &self.edges {
            src.push(i);
            dst.push(j);
        }
        (src, dst)
    }
}

fn validate_cutoff(structure: &AtomicStructure, cutoff: f64) {
    assert!(
        cutoff.is_finite() && cutoff > 0.0,
        "cutoff must be positive, got {cutoff}"
    );
    if let Some(cell) = structure.cell() {
        let min_l = cell.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            cutoff <= min_l / 2.0,
            "cutoff {cutoff} exceeds half the shortest box length {min_l}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_molecule(n: usize, extent: f64, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let species = (0..n).map(|_| Element::C).collect();
        let positions = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    fn random_periodic(n: usize, box_l: f64, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let species = (0..n).map(|_| Element::Cu).collect();
        let positions = (0..n)
            .map(|_| {
                [
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                ]
            })
            .collect();
        AtomicStructure::new_periodic(species, positions, [box_l; 3]).unwrap()
    }

    #[test]
    fn pair_within_cutoff() {
        let s = AtomicStructure::new(
            vec![Element::H, Element::H],
            vec![[0.0; 3], [1.0, 0.0, 0.0]],
        )
        .unwrap();
        let nl = NeighborList::build(&s, 1.5);
        assert_eq!(nl.edges(), &[(0, 1), (1, 0)]);
        let nl = NeighborList::build(&s, 0.5);
        assert!(nl.is_empty());
    }

    #[test]
    fn no_self_edges() {
        let s = random_molecule(60, 4.0, 1);
        let nl = NeighborList::build(&s, 2.0);
        assert!(nl.edges().iter().all(|&(i, j)| i != j));
    }

    #[test]
    fn edges_are_symmetric() {
        let s = random_molecule(60, 4.0, 2);
        let nl = NeighborList::build(&s, 2.0);
        for &(i, j) in nl.edges() {
            assert!(
                nl.edges().binary_search(&(j, i)).is_ok(),
                "missing reverse of ({i},{j})"
            );
        }
    }

    #[test]
    fn cell_list_matches_brute_force_open() {
        for seed in 0..5 {
            let s = random_molecule(120, 6.0, seed);
            let a = NeighborList::build(&s, 1.8);
            let b = NeighborList::build_brute_force(&s, 1.8);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn cell_list_matches_brute_force_periodic() {
        for seed in 0..5 {
            let s = random_periodic(150, 12.0, seed);
            let a = NeighborList::build(&s, 3.0);
            let b = NeighborList::build_brute_force(&s, 3.0);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn cell_list_matches_brute_force_under_pool_of_4() {
        // The parallel scan must reproduce the serial build bit for bit:
        // per-atom runs are concatenated in atom order before the sort.
        pool::set_thread_override(4);
        for seed in 0..5 {
            let open = random_molecule(200, 7.0, seed);
            let a = NeighborList::build(&open, 1.8);
            pool::set_thread_override(1);
            let serial = NeighborList::build(&open, 1.8);
            pool::set_thread_override(4);
            assert_eq!(a, serial, "open seed {seed}: parallel != serial");
            assert_eq!(
                a,
                NeighborList::build_brute_force(&open, 1.8),
                "open seed {seed}"
            );

            let per = random_periodic(220, 12.0, seed);
            let a = NeighborList::build(&per, 3.0);
            pool::set_thread_override(1);
            let serial = NeighborList::build(&per, 3.0);
            pool::set_thread_override(4);
            assert_eq!(a, serial, "periodic seed {seed}: parallel != serial");
            assert_eq!(
                a,
                NeighborList::build_brute_force(&per, 3.0),
                "periodic seed {seed}"
            );
        }
        pool::set_thread_override(0);
    }

    #[test]
    fn periodic_wraparound_edge_found() {
        let s = AtomicStructure::new_periodic(
            vec![Element::Cu, Element::Cu],
            vec![[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]],
            [10.0; 3],
        )
        .unwrap();
        let nl = NeighborList::build(&s, 1.0);
        assert_eq!(nl.edges(), &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_beyond_half_box_panics() {
        let s = random_periodic(10, 6.0, 3);
        let _ = NeighborList::build(&s, 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cutoff_panics() {
        let s = random_molecule(4, 2.0, 4);
        let _ = NeighborList::build(&s, 0.0);
    }

    #[test]
    fn src_dst_split() {
        let s = random_molecule(40, 3.0, 5);
        let nl = NeighborList::build(&s, 2.0);
        let (src, dst) = nl.to_src_dst();
        assert_eq!(src.len(), nl.len());
        for (k, &(i, j)) in nl.edges().iter().enumerate() {
            assert_eq!((src[k], dst[k]), (i, j));
        }
    }
}
