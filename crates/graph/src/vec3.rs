//! Minimal 3-vector arithmetic for atomistic geometry.
//!
//! Positions are plain `[f64; 3]` so structures stay `serde`-friendly and
//! allocation-free; these free functions supply the small amount of vector
//! algebra the substrate needs (neighbor search, rotations, potentials).

/// A 3-component position / displacement vector.
pub type Vec3 = [f64; 3];

/// `a + b`.
pub fn add(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// `a - b`.
pub fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

/// `s * a`.
pub fn scale(a: Vec3, s: f64) -> Vec3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

/// Dot product.
pub fn dot(a: Vec3, b: Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Cross product.
pub fn cross(a: Vec3, b: Vec3) -> Vec3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Squared Euclidean norm.
pub fn norm_sq(a: Vec3) -> f64 {
    dot(a, a)
}

/// Euclidean norm.
pub fn norm(a: Vec3) -> f64 {
    norm_sq(a).sqrt()
}

/// Unit vector in the direction of `a`.
///
/// # Panics
///
/// Panics if `a` is the zero vector.
pub fn normalize(a: Vec3) -> Vec3 {
    let n = norm(a);
    assert!(n > 0.0, "normalize of zero vector");
    scale(a, 1.0 / n)
}

/// A 3×3 rotation (or general linear) matrix in row-major order.
pub type Mat3 = [[f64; 3]; 3];

/// Applies `m` to `v`.
pub fn matvec(m: &Mat3, v: Vec3) -> Vec3 {
    [
        m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
        m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
        m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
    ]
}

/// Rotation matrix about an arbitrary unit axis by `angle` radians
/// (Rodrigues' formula).
///
/// # Panics
///
/// Panics if `axis` is the zero vector.
pub fn rotation_about(axis: Vec3, angle: f64) -> Mat3 {
    let u = normalize(axis);
    let (s, c) = angle.sin_cos();
    let t = 1.0 - c;
    [
        [
            c + u[0] * u[0] * t,
            u[0] * u[1] * t - u[2] * s,
            u[0] * u[2] * t + u[1] * s,
        ],
        [
            u[1] * u[0] * t + u[2] * s,
            c + u[1] * u[1] * t,
            u[1] * u[2] * t - u[0] * s,
        ],
        [
            u[2] * u[0] * t - u[1] * s,
            u[2] * u[1] * t + u[0] * s,
            c + u[2] * u[2] * t,
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_algebra() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(add(a, b), [5.0, -3.0, 9.0]);
        assert_eq!(sub(a, b), [-3.0, 7.0, -3.0]);
        assert_eq!(scale(a, 2.0), [2.0, 4.0, 6.0]);
        assert_eq!(dot(a, b), 12.0);
        assert_eq!(norm_sq(a), 14.0);
    }

    #[test]
    fn cross_orthogonal() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0];
        assert_eq!(cross(a, b), [0.0, 0.0, 1.0]);
        let c = cross([1.0, 2.0, 3.0], [-2.0, 0.5, 4.0]);
        assert!(dot(c, [1.0, 2.0, 3.0]).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_angle() {
        let r = rotation_about([1.0, 1.0, 0.2], 0.7);
        let v = [0.3, -1.2, 2.5];
        let w = [1.0, 0.4, -0.7];
        let rv = matvec(&r, v);
        let rw = matvec(&r, w);
        assert!((norm(rv) - norm(v)).abs() < 1e-12);
        assert!((dot(rv, rw) - dot(v, w)).abs() < 1e-12);
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let r = rotation_about([0.0, 0.0, 1.0], 0.0);
        let v = [1.0, 2.0, 3.0];
        let rv = matvec(&r, v);
        for i in 0..3 {
            assert!((rv[i] - v[i]).abs() < 1e-12);
        }
    }
}
