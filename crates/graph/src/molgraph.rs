//! Molecular graphs: atomistic structures lowered to the node/edge form
//! consumed by GNN models.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;
use crate::{AtomicStructure, Element, NeighborList};

/// Width of the per-node feature vector produced by
/// [`MolGraph::node_features_flat`]: a one-hot element encoding plus two
/// normalized scalar descriptors (electronegativity, covalent radius).
pub const NODE_FEAT_DIM: usize = Element::COUNT + 2;

/// An atomistic structure lowered to a directed graph.
///
/// Nodes are atoms; a directed edge `(i, j)` exists whenever atoms `i` and
/// `j` are within the construction cutoff (both directions are present).
/// Each edge stores its minimum-image relative vector `pos[i] − pos[j]` so
/// periodic wrap-around is baked in and models never need the cell.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, MolGraph};
///
/// let s = AtomicStructure::new(
///     vec![Element::O, Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 1.2);
/// assert_eq!(g.n_nodes(), 3);
/// assert_eq!(g.n_edges(), 4); // two O–H bonds, both directions
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MolGraph {
    species: Vec<Element>,
    src: Vec<usize>,
    dst: Vec<usize>,
    /// Minimum-image `pos[src[k]] − pos[dst[k]]` per edge.
    edge_vectors: Vec<Vec3>,
}

impl MolGraph {
    /// Lowers a structure to a graph using a radius-cutoff neighbor list.
    ///
    /// # Panics
    ///
    /// Panics on invalid cutoffs (see [`NeighborList::build`]).
    pub fn from_structure(structure: &AtomicStructure, cutoff: f64) -> Self {
        let nl = NeighborList::build(structure, cutoff);
        Self::from_structure_with_neighbors(structure, &nl)
    }

    /// Lowers a structure using a precomputed neighbor list.
    pub fn from_structure_with_neighbors(structure: &AtomicStructure, nl: &NeighborList) -> Self {
        let (src, dst) = nl.to_src_dst();
        let edge_vectors = nl
            .edges()
            .iter()
            .map(|&(i, j)| structure.displacement(j, i)) // pos[i] − pos[j]
            .collect();
        MolGraph {
            species: structure.species().to_vec(),
            src,
            dst,
            edge_vectors,
        }
    }

    /// Constructs a graph from raw parts (used by deserialization and
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if edge arrays disagree in length or reference nodes out of
    /// range.
    pub fn from_parts(
        species: Vec<Element>,
        src: Vec<usize>,
        dst: Vec<usize>,
        edge_vectors: Vec<Vec3>,
    ) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), edge_vectors.len(), "edge vector length mismatch");
        let n = species.len();
        assert!(
            src.iter().chain(dst.iter()).all(|&i| i < n),
            "edge references node out of range"
        );
        MolGraph {
            species,
            src,
            dst,
            edge_vectors,
        }
    }

    /// Number of atoms (nodes).
    pub fn n_nodes(&self) -> usize {
        self.species.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    /// Element of each node.
    pub fn species(&self) -> &[Element] {
        &self.species
    }

    /// Source node of each directed edge.
    pub fn src(&self) -> &[usize] {
        &self.src
    }

    /// Destination node of each directed edge.
    pub fn dst(&self) -> &[usize] {
        &self.dst
    }

    /// Minimum-image relative vector `pos[src] − pos[dst]` per edge (Å).
    pub fn edge_vectors(&self) -> &[Vec3] {
        &self.edge_vectors
    }

    /// Flat row-major `[n_nodes × NODE_FEAT_DIM]` feature buffer: one-hot
    /// element encoding, then electronegativity / 4 and covalent radius / 2
    /// (both roughly unit scale).
    pub fn node_features_flat(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n_nodes() * NODE_FEAT_DIM];
        for (a, &e) in self.species.iter().enumerate() {
            let row = &mut out[a * NODE_FEAT_DIM..(a + 1) * NODE_FEAT_DIM];
            row[e.index()] = 1.0;
            row[Element::COUNT] = (e.electronegativity() / 4.0) as f32;
            row[Element::COUNT + 1] = (e.covalent_radius() / 2.0) as f32;
        }
        out
    }

    /// Flat row-major `[n_edges × 3]` buffer of the edge relative vectors.
    pub fn edge_vectors_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.n_edges() * 3);
        for v in &self.edge_vectors {
            out.extend_from_slice(&[v[0] as f32, v[1] as f32, v[2] as f32]);
        }
        out
    }

    /// Mean number of neighbors per node (directed degree).
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            self.n_edges() as f64 / self.n_nodes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn water() -> AtomicStructure {
        AtomicStructure::new(
            vec![Element::O, Element::H, Element::H],
            vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
        )
        .unwrap()
    }

    #[test]
    fn water_graph_edges() {
        let g = MolGraph::from_structure(&water(), 1.2);
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.src(), &[0, 0, 1, 2]);
        assert_eq!(g.dst(), &[1, 2, 0, 0]);
    }

    #[test]
    fn edge_vectors_are_antisymmetric() {
        let g = MolGraph::from_structure(&water(), 1.2);
        // Edge (0,1) and (1,0) should have opposite vectors.
        let v01 = g.edge_vectors()[0];
        let v10 = g.edge_vectors()[2];
        for k in 0..3 {
            assert!((v01[k] + v10[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn edge_vector_matches_positions() {
        let s = water();
        let g = MolGraph::from_structure(&s, 1.2);
        // First edge is (0,1): pos[0] − pos[1] = (−0.96, 0, 0).
        let v = g.edge_vectors()[0];
        assert!((v[0] + 0.96).abs() < 1e-12);
    }

    #[test]
    fn node_features_one_hot() {
        let g = MolGraph::from_structure(&water(), 1.2);
        let f = g.node_features_flat();
        assert_eq!(f.len(), 3 * NODE_FEAT_DIM);
        // Node 0 is O.
        assert_eq!(f[Element::O.index()], 1.0);
        assert_eq!(f[Element::H.index()], 0.0);
        // Exactly one one-hot bit per node.
        for a in 0..3 {
            let row = &f[a * NODE_FEAT_DIM..a * NODE_FEAT_DIM + Element::COUNT];
            assert_eq!(row.iter().filter(|&&x| x == 1.0).count(), 1);
        }
    }

    #[test]
    fn periodic_edge_vectors_use_minimum_image() {
        let s = AtomicStructure::new_periodic(
            vec![Element::Cu, Element::Cu],
            vec![[0.2, 5.0, 5.0], [9.8, 5.0, 5.0]],
            [10.0; 3],
        )
        .unwrap();
        let g = MolGraph::from_structure(&s, 1.0);
        assert_eq!(g.n_edges(), 2);
        // pos[0] − pos[1] wrapped = +0.4 along x.
        let v = g.edge_vectors()[0];
        assert!((v[0] - 0.4).abs() < 1e-12, "{v:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_validates_indices() {
        let _ = MolGraph::from_parts(vec![Element::H], vec![0], vec![5], vec![[0.0; 3]]);
    }

    #[test]
    fn mean_degree() {
        let g = MolGraph::from_structure(&water(), 1.2);
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }
}
