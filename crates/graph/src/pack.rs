//! Packing variable-size graphs into bounded batches.
//!
//! The disjoint-union [`GraphBatch`] places no limit on how many graphs it
//! absorbs, but downstream consumers do: an inference engine wants batches
//! big enough to saturate the kernels yet small enough to bound latency
//! and peak activation memory. [`PackPolicy`] captures those limits and
//! [`pack_indices`] / [`pack_batches`] apply them in arrival (FIFO) order —
//! the order a serving queue hands graphs over, so a request is never
//! delayed behind one that arrived after it.

use crate::{GraphBatch, MolGraph};

/// Size limits for one packed batch.
///
/// A batch is closed when admitting the next graph would push it past
/// `max_atoms` *or* `max_graphs`. A single graph larger than `max_atoms`
/// still forms its own batch (it has to run somewhere); the policy bounds
/// packing, it does not reject work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackPolicy {
    /// Maximum total node (atom) count per batch.
    pub max_atoms: usize,
    /// Maximum number of graphs per batch.
    pub max_graphs: usize,
}

impl PackPolicy {
    /// A policy bounded only by atom budget.
    pub fn by_atoms(max_atoms: usize) -> Self {
        PackPolicy {
            max_atoms,
            max_graphs: usize::MAX,
        }
    }

    /// Whether a batch currently holding `graphs` graphs and `atoms` atoms
    /// can admit another graph of `next_atoms` atoms.
    pub fn admits(&self, graphs: usize, atoms: usize, next_atoms: usize) -> bool {
        if graphs == 0 {
            return true; // a batch always takes at least one graph
        }
        graphs < self.max_graphs && atoms + next_atoms <= self.max_atoms
    }
}

/// Partitions `sizes` (per-graph atom counts, in arrival order) into
/// consecutive groups of indices, each respecting `policy`.
///
/// Groups are contiguous index ranges — FIFO semantics for a serving
/// queue: reordering could lower padding waste but would let late-arriving
/// small graphs overtake earlier large ones.
pub fn pack_indices(sizes: &[usize], policy: &PackPolicy) -> Vec<Vec<usize>> {
    let mut groups = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut atoms = 0usize;
    for (i, &size) in sizes.iter().enumerate() {
        if !policy.admits(current.len(), atoms, size) {
            groups.push(std::mem::take(&mut current));
            atoms = 0;
        }
        current.push(i);
        atoms += size;
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Packs graphs into [`GraphBatch`]es under `policy`, preserving arrival
/// order across and within batches. Returns the batches and, parallel to
/// them, the original indices each batch contains.
pub fn pack_batches(graphs: &[&MolGraph], policy: &PackPolicy) -> Vec<(GraphBatch, Vec<usize>)> {
    let sizes: Vec<usize> = graphs.iter().map(|g| g.n_nodes()).collect();
    pack_indices(&sizes, policy)
        .into_iter()
        .map(|idx| {
            let members: Vec<&MolGraph> = idx.iter().map(|&i| graphs[i]).collect();
            (GraphBatch::from_graphs(&members), idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicStructure, Element};

    fn chain(n: usize) -> MolGraph {
        let species = vec![Element::C; n];
        let positions = (0..n).map(|i| [i as f64 * 1.2, 0.0, 0.0]).collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        MolGraph::from_structure(&s, 1.5)
    }

    #[test]
    fn packs_fifo_under_atom_budget() {
        let sizes = [4, 4, 4, 4, 4];
        let groups = pack_indices(&sizes, &PackPolicy::by_atoms(10));
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn max_graphs_bounds_batch_width() {
        let sizes = [1, 1, 1, 1, 1];
        let policy = PackPolicy {
            max_atoms: 100,
            max_graphs: 2,
        };
        let groups = pack_indices(&sizes, &policy);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn oversized_graph_gets_its_own_batch() {
        let sizes = [3, 50, 3];
        let groups = pack_indices(&sizes, &PackPolicy::by_atoms(10));
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn empty_input_packs_to_nothing() {
        assert!(pack_indices(&[], &PackPolicy::by_atoms(8)).is_empty());
    }

    #[test]
    fn packed_batches_preserve_structure() {
        let graphs = [chain(3), chain(5), chain(2), chain(4)];
        let refs: Vec<&MolGraph> = graphs.iter().collect();
        let packed = pack_batches(&refs, &PackPolicy::by_atoms(8));
        // 3+5=8 fits; 2+4=6 fits.
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[0].1, vec![0, 1]);
        assert_eq!(packed[1].1, vec![2, 3]);
        assert_eq!(packed[0].0.n_nodes(), 8);
        assert_eq!(packed[0].0.n_graphs(), 2);
        assert_eq!(packed[1].0.n_nodes(), 6);
        // Per-graph node counts survive the pack.
        assert_eq!(packed[0].0.node_counts(), &[3, 5]);
        assert_eq!(packed[1].0.node_counts(), &[2, 4]);
    }
}
