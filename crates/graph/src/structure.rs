//! Atomistic structures: the raw geometry + composition that the graph
//! construction, the reference potential, and the data generators operate
//! on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::vec3::{self, Mat3, Vec3};
use crate::Element;

/// Error for invalid structure construction.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureError {
    /// `species` and `positions` lengths differ.
    LengthMismatch {
        /// Number of species entries.
        species: usize,
        /// Number of position entries.
        positions: usize,
    },
    /// A periodic cell length was non-positive or non-finite.
    InvalidCell(Vec3),
}

impl std::fmt::Display for StructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureError::LengthMismatch { species, positions } => {
                write!(f, "{species} species but {positions} positions")
            }
            StructureError::InvalidCell(c) => {
                write!(f, "invalid periodic cell lengths {c:?}")
            }
        }
    }
}

impl std::error::Error for StructureError {}

/// An atomistic configuration: element species, Cartesian positions (Å),
/// and an optional orthorhombic periodic cell.
///
/// Periodic boundary conditions are restricted to orthorhombic cells
/// (axis-aligned box lengths), which covers the slab/bulk geometries our
/// synthetic OC20/OC22/MPTrj stand-ins generate.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element};
///
/// let water = AtomicStructure::new(
///     vec![Element::O, Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
/// )?;
/// assert_eq!(water.len(), 3);
/// assert!(!water.is_periodic());
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtomicStructure {
    species: Vec<Element>,
    positions: Vec<Vec3>,
    /// Orthorhombic box lengths, if periodic.
    cell: Option<Vec3>,
}

impl AtomicStructure {
    /// Creates a non-periodic (molecular) structure.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::LengthMismatch`] if the inputs disagree in
    /// length.
    pub fn new(species: Vec<Element>, positions: Vec<Vec3>) -> Result<Self, StructureError> {
        if species.len() != positions.len() {
            return Err(StructureError::LengthMismatch {
                species: species.len(),
                positions: positions.len(),
            });
        }
        Ok(AtomicStructure {
            species,
            positions,
            cell: None,
        })
    }

    /// Creates a periodic structure in an orthorhombic cell of the given
    /// box lengths.
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch or non-positive cell lengths.
    pub fn new_periodic(
        species: Vec<Element>,
        positions: Vec<Vec3>,
        cell: Vec3,
    ) -> Result<Self, StructureError> {
        if cell.iter().any(|&l| !(l.is_finite() && l > 0.0)) {
            return Err(StructureError::InvalidCell(cell));
        }
        let mut s = Self::new(species, positions)?;
        s.cell = Some(cell);
        Ok(s)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// Whether the structure contains no atoms.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Element of each atom.
    pub fn species(&self) -> &[Element] {
        &self.species
    }

    /// Cartesian position of each atom (Å).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Orthorhombic box lengths if periodic.
    pub fn cell(&self) -> Option<Vec3> {
        self.cell
    }

    /// Whether periodic boundary conditions apply.
    pub fn is_periodic(&self) -> bool {
        self.cell.is_some()
    }

    /// The minimum-image displacement `positions[j] - positions[i]`.
    ///
    /// For periodic structures each component is wrapped into
    /// `[-L/2, L/2)`; for molecules it is the plain difference.
    pub fn displacement(&self, i: usize, j: usize) -> Vec3 {
        let mut d = vec3::sub(self.positions[j], self.positions[i]);
        if let Some(cell) = self.cell {
            for k in 0..3 {
                let l = cell[k];
                d[k] -= (d[k] / l).round() * l;
            }
        }
        d
    }

    /// Minimum-image distance between atoms `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        vec3::norm(self.displacement(i, j))
    }

    /// The unweighted centroid of all positions.
    ///
    /// # Panics
    ///
    /// Panics on an empty structure.
    pub fn centroid(&self) -> Vec3 {
        assert!(!self.is_empty(), "centroid of empty structure");
        let mut c = [0.0; 3];
        for p in &self.positions {
            c = vec3::add(c, *p);
        }
        vec3::scale(c, 1.0 / self.len() as f64)
    }

    /// Translates every atom by `t` (in place).
    pub fn translate(&mut self, t: Vec3) {
        for p in &mut self.positions {
            *p = vec3::add(*p, t);
        }
    }

    /// Applies a rotation matrix about the origin to every atom (in place).
    ///
    /// Only meaningful for non-periodic structures; rotating a periodic
    /// structure would require rotating the cell, which orthorhombic cells
    /// cannot represent, so this method panics in that case.
    ///
    /// # Panics
    ///
    /// Panics if the structure is periodic.
    pub fn rotate(&mut self, m: &Mat3) {
        assert!(
            !self.is_periodic(),
            "cannot rotate a periodic orthorhombic structure"
        );
        for p in &mut self.positions {
            *p = vec3::matvec(m, *p);
        }
    }

    /// Adds i.i.d. Gaussian noise of standard deviation `sigma` (Å) to every
    /// coordinate (in place) — used to generate non-equilibrium frames.
    #[allow(clippy::needless_range_loop)] // coordinate index is semantic
    pub fn perturb<R: Rng + ?Sized>(&mut self, sigma: f64, rng: &mut R) {
        for p in &mut self.positions {
            for k in 0..3 {
                // Box–Muller on the f64 path.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                p[k] += z * sigma;
            }
        }
    }

    /// Counts atoms of each element, indexed by [`Element::index`].
    pub fn composition(&self) -> [usize; Element::COUNT] {
        let mut counts = [0usize; Element::COUNT];
        for e in &self.species {
            counts[e.index()] += 1;
        }
        counts
    }

    /// A short formula-like summary, e.g. `C2H6O`.
    pub fn formula(&self) -> String {
        let counts = self.composition();
        let mut out = String::new();
        for &e in &Element::ALL {
            let c = counts[e.index()];
            match c {
                0 => {}
                1 => out.push_str(e.symbol()),
                _ => {
                    out.push_str(e.symbol());
                    out.push_str(&c.to_string());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::rotation_about;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn methane() -> AtomicStructure {
        AtomicStructure::new(
            vec![Element::C, Element::H, Element::H, Element::H, Element::H],
            vec![
                [0.0, 0.0, 0.0],
                [0.63, 0.63, 0.63],
                [-0.63, -0.63, 0.63],
                [-0.63, 0.63, -0.63],
                [0.63, -0.63, -0.63],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(AtomicStructure::new(vec![Element::H], vec![]).is_err());
        assert!(
            AtomicStructure::new_periodic(vec![Element::H], vec![[0.0; 3]], [5.0, -1.0, 5.0])
                .is_err()
        );
    }

    #[test]
    fn distances_molecular() {
        let m = methane();
        let d = m.distance(0, 1);
        assert!((d - (3.0f64 * 0.63 * 0.63).sqrt()).abs() < 1e-12);
        // Symmetric.
        assert_eq!(m.distance(1, 0), d);
    }

    #[test]
    fn minimum_image_wraps() {
        let s = AtomicStructure::new_periodic(
            vec![Element::Cu, Element::Cu],
            vec![[0.2, 0.0, 0.0], [9.8, 0.0, 0.0]],
            [10.0, 10.0, 10.0],
        )
        .unwrap();
        // Across the boundary the atoms are 0.4 Å apart, not 9.6.
        assert!((s.distance(0, 1) - 0.4).abs() < 1e-12);
        let d = s.displacement(0, 1);
        assert!((d[0] - (-0.4)).abs() < 1e-12);
    }

    #[test]
    fn translate_preserves_internal_distances() {
        let mut m = methane();
        let d01 = m.distance(0, 1);
        m.translate([10.0, -3.0, 2.0]);
        assert!((m.distance(0, 1) - d01).abs() < 1e-12);
        assert!((m.positions()[0][0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_preserves_internal_distances() {
        let mut m = methane();
        let d01 = m.distance(0, 1);
        let d12 = m.distance(1, 2);
        m.rotate(&rotation_about([0.3, 1.0, -0.5], 1.1));
        assert!((m.distance(0, 1) - d01).abs() < 1e-12);
        assert!((m.distance(1, 2) - d12).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "periodic")]
    fn rotate_periodic_panics() {
        let mut s =
            AtomicStructure::new_periodic(vec![Element::Cu], vec![[0.0; 3]], [10.0, 10.0, 10.0])
                .unwrap();
        s.rotate(&rotation_about([0.0, 0.0, 1.0], 0.5));
    }

    #[test]
    fn perturb_moves_atoms() {
        let mut m = methane();
        let before = m.positions()[1];
        let mut rng = StdRng::seed_from_u64(11);
        m.perturb(0.05, &mut rng);
        let after = m.positions()[1];
        assert_ne!(before, after);
        // Small sigma keeps displacements small.
        assert!(vec3::norm(vec3::sub(after, before)) < 1.0);
    }

    #[test]
    fn composition_and_formula() {
        let m = methane();
        let c = m.composition();
        assert_eq!(c[Element::C.index()], 1);
        assert_eq!(c[Element::H.index()], 4);
        assert_eq!(m.formula(), "H4C");
    }

    #[test]
    fn centroid_of_symmetric_molecule_is_center() {
        let m = methane();
        let c = m.centroid();
        assert!(vec3::norm(c) < 1e-12);
    }
}
