//! # matgnn-graph
//!
//! The atomistic graph substrate for `matgnn`: chemical [`Element`]s,
//! [`AtomicStructure`] geometry (with optional orthorhombic periodic
//! cells), O(N) cell-list [`NeighborList`] construction, lowering to
//! [`MolGraph`]s, and disjoint-union [`GraphBatch`]ing into tensors.
//!
//! This crate replaces the data-representation layer of the paper's
//! HydraGNN pipeline: atoms become nodes, interatomic proximity becomes
//! directed edges, and periodic wrap-around is baked into per-edge
//! minimum-image relative vectors so models never see the cell.
//!
//! ```
//! use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
//!
//! let s = AtomicStructure::new(
//!     vec![Element::C, Element::H],
//!     vec![[0.0, 0.0, 0.0], [1.1, 0.0, 0.0]],
//! )?;
//! let g = MolGraph::from_structure(&s, 1.5);
//! let batch = GraphBatch::from_graphs(&[&g]);
//! assert_eq!(batch.n_edges(), 2);
//! # Ok::<(), matgnn_graph::StructureError>(())
//! ```

#![warn(missing_docs)]

mod batch;
mod element;
mod molgraph;
mod neighbors;
mod pack;
mod partition;
mod structure;
pub mod vec3;

pub use batch::GraphBatch;
pub use element::Element;
pub use molgraph::{MolGraph, NODE_FEAT_DIM};
pub use neighbors::NeighborList;
pub use pack::{pack_batches, pack_indices, PackPolicy};
pub use partition::{parts_for_rank, PartDomain, PartitionPlan};
pub use structure::{AtomicStructure, StructureError};
