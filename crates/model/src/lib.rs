//! # matgnn-model
//!
//! The model families of the `matgnn` reproduction: the E(n)-equivariant
//! [`Egnn`] backbone the paper scales (Satorras et al., selected in
//! Sec. III-B), a non-equivariant [`Gcn`] baseline, and the shared
//! [`GnnModel`] abstraction that exposes forward passes as checkpointable
//! segments.
//!
//! Both models predict the paper's two task heads: a **graph-level energy**
//! (extensive sum over per-node contributions) and **node-level forces**
//! (for EGNN: an equivariant combination of edge vectors).
//!
//! ```
//! use matgnn_model::{Egnn, EgnnConfig};
//!
//! // Width that lands near 50k parameters at depth 3 — how the scaling
//! // sweeps pick model sizes.
//! let cfg = EgnnConfig::with_target_params(50_000, 3);
//! let model = Egnn::new(cfg);
//! assert!(model.n_params() > 30_000);
//! ```

#![warn(missing_docs)]

mod attention;
pub mod checkpoint;
mod config;
mod egnn;
mod gcn;
pub mod graphpar;
mod infer;
pub mod mlp;
mod model;
mod params;

pub use attention::{segment_softmax, Gat, GatConfig};
pub use config::EgnnConfig;
pub use egnn::Egnn;
pub use gcn::{Gcn, GcnConfig};
pub use graphpar::{
    graphpar_step, local_batches, GraphParLoss, GraphParOutput, HaloChannel, HaloError, LocalHalo,
};
pub use infer::{FreezeError, FrozenEgnn};
pub use model::{GnnModel, ModelOutput};
pub use params::{ParamEntry, ParamSet};
