//! A plain graph convolutional network (Kipf & Welling) baseline.
//!
//! The paper motivates EGNN by its built-in E(n) equivariance; this GCN
//! gives the experiments a non-equivariant comparator. Its layer is
//! `h' = σ(D⁻¹(A + I)·h·W)`; the force head is a direct linear map from
//! invariant node features to 3 components — deliberately *not*
//! equivariant, which is exactly the failure mode the ablation benches
//! demonstrate.

use std::sync::Arc;

use matgnn_graph::GraphBatch;
use matgnn_tensor::{Tape, Tensor, Var};

use crate::mlp::{init_rng, Activation, Linear, LinearSpec, Mlp};
use crate::{GnnModel, ParamSet};

/// Hyperparameters of the GCN baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcnConfig {
    /// Input node feature width.
    pub node_feat_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Number of graph convolution layers.
    pub n_layers: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl GcnConfig {
    /// A config with the graph crate's feature width and the given shape.
    pub fn new(hidden_dim: usize, n_layers: usize) -> Self {
        GcnConfig {
            node_feat_dim: matgnn_graph::NODE_FEAT_DIM,
            hidden_dim,
            n_layers,
            seed: 0,
        }
    }

    /// Exact scalar parameter count.
    pub fn param_count(&self) -> usize {
        let h = self.hidden_dim;
        let f = self.node_feat_dim;
        let mut total = f * h + h; // embed
        total += (h * h + h) * self.n_layers; // conv weights
        total += Mlp::count_params(&[h, h, 1]); // energy head
        total += h * 3 + 3; // force head (non-equivariant linear)
        total
    }
}

/// The GCN baseline model.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
/// use matgnn_model::{Gcn, GcnConfig, GnnModel};
/// use matgnn_tensor::Tape;
///
/// let s = AtomicStructure::new(
///     vec![Element::C, Element::H],
///     vec![[0.0, 0.0, 0.0], [1.1, 0.0, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 2.0);
/// let batch = GraphBatch::from_graphs(&[&g]);
/// let model = Gcn::new(GcnConfig::new(8, 2));
/// let mut tape = Tape::new();
/// let (_, out) = model.bind_and_forward(&mut tape, &batch);
/// assert_eq!(tape.shape(out.energy).dims(), &[1, 1]);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gcn {
    config: GcnConfig,
    params: ParamSet,
    embed: Linear,
    convs: Vec<Linear>,
    energy_head: Mlp,
    force_head: Linear,
    segment_ranges: Vec<(usize, usize)>,
}

impl Gcn {
    /// Builds and initializes the model.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` or `n_layers` is zero.
    pub fn new(config: GcnConfig) -> Self {
        assert!(config.hidden_dim > 0, "hidden_dim must be positive");
        assert!(config.n_layers > 0, "n_layers must be positive");
        let h = config.hidden_dim;
        let mut params = ParamSet::new();
        let mut rng = init_rng(config.seed);
        let mut segment_ranges = Vec::new();

        let mut start = params.len();
        let embed = Linear::new(
            &mut params,
            "embed",
            LinearSpec {
                in_dim: config.node_feat_dim,
                out_dim: h,
            },
            1.0,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        let mut convs = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            start = params.len();
            convs.push(Linear::new(
                &mut params,
                &format!("conv{l}"),
                LinearSpec {
                    in_dim: h,
                    out_dim: h,
                },
                1.0,
                &mut rng,
            ));
            segment_ranges.push((start, params.len()));
        }

        start = params.len();
        let energy_head = Mlp::new(
            &mut params,
            "energy_head",
            &[h, h, 1],
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
        let force_head = Linear::new(
            &mut params,
            "force_head",
            LinearSpec {
                in_dim: h,
                out_dim: 3,
            },
            0.1,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        debug_assert_eq!(
            params.n_scalars(),
            config.param_count(),
            "param count formula drift"
        );
        Gcn {
            config,
            params,
            embed,
            convs,
            energy_head,
            force_head,
            segment_ranges,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn n_params(&self) -> usize {
        self.params.n_scalars()
    }

    /// `1/(deg+1)` per node — the symmetric-free random-walk normalization
    /// with a self loop.
    fn inv_degree_plus_one(batch: &GraphBatch) -> Tensor {
        let mut deg = vec![1.0f32; batch.n_nodes()];
        for &s in batch.src().iter() {
            deg[s] += 1.0;
        }
        let inv: Vec<f32> = deg.iter().map(|&d| 1.0 / d).collect();
        Tensor::from_vec((batch.n_nodes(), 1), inv).expect("inv degree length")
    }
}

impl GnnModel for Gcn {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn n_segments(&self) -> usize {
        self.config.n_layers + 2
    }

    fn segment_param_range(&self, seg: usize) -> (usize, usize) {
        self.segment_ranges[seg]
    }

    fn segment_forward(
        &self,
        tape: &mut Tape,
        seg: usize,
        pvars: &[Var],
        batch: &GraphBatch,
        state: &[Var],
    ) -> Vec<Var> {
        let (offset, _) = self.segment_ranges[seg];
        let last = self.n_segments() - 1;
        if seg == 0 {
            let feats = tape.constant(batch.node_feats().clone());
            let h = self.embed.forward(tape, pvars, offset, feats);
            let h = tape.silu(h);
            vec![h]
        } else if seg < last {
            let h = state[0];
            // (A + I)·h via gather/scatter plus the self term.
            let hj = tape.gather_rows(h, Arc::clone(batch.dst()));
            let agg = tape.scatter_add_rows(hj, Arc::clone(batch.src()), batch.n_nodes());
            let with_self = tape.add(agg, h);
            let inv = tape.constant(Self::inv_degree_plus_one(batch));
            let norm = tape.mul_col(with_self, inv);
            let out = self.convs[seg - 1].forward(tape, pvars, offset, norm);
            let out = tape.silu(out);
            vec![out]
        } else {
            let h = state[0];
            let node_e = self.energy_head.forward(tape, pvars, offset, h);
            let energy =
                tape.scatter_add_rows(node_e, Arc::clone(batch.node_graph()), batch.n_graphs());
            let forces = self.force_head.forward(tape, pvars, offset, h);
            vec![energy, forces]
        }
    }

    fn describe(&self) -> String {
        format!(
            "gcn(h={}, L={}, {} params)",
            self.config.hidden_dim,
            self.config.n_layers,
            self.n_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_graph::{AtomicStructure, Element, MolGraph};
    use matgnn_tensor::gradcheck;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(n: usize, seed: u64) -> GraphBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let species = (0..n).map(|_| Element::C).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i % 3) as f64 * 1.3 + rng.gen_range(-0.2..0.2),
                    ((i / 3) % 3) as f64 * 1.3 + rng.gen_range(-0.2..0.2),
                    (i / 9) as f64 * 1.3,
                ]
            })
            .collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        let g = MolGraph::from_structure(&s, 2.5);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn output_shapes_and_count() {
        let cfg = GcnConfig::new(8, 2);
        let model = Gcn::new(cfg);
        assert_eq!(model.n_params(), cfg.param_count());
        let b = random_batch(6, 1);
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, &b);
        assert_eq!(tape.shape(out.energy).dims(), &[1, 1]);
        assert_eq!(tape.shape(out.forces).dims(), &[6, 3]);
    }

    #[test]
    fn gradcheck_tiny_gcn() {
        let model = Gcn::new(GcnConfig::new(4, 2));
        let b = random_batch(4, 2);
        let inputs: Vec<Tensor> = model.params().iter().map(|e| e.tensor.clone()).collect();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let out = model.forward(tape, vars, &b);
                let e2 = tape.square(out.energy);
                let f2 = tape.square(out.forces);
                let le = tape.mean_all(e2);
                let lf = tape.mean_all(f2);
                tape.add(le, lf)
            },
            3e-2,
        );
    }

    #[test]
    fn gcn_forces_not_rotation_covariant() {
        // The documented limitation: rotating the structure does not rotate
        // GCN force predictions (features are rotation invariant, so the
        // prediction is unchanged while the target rotates).
        let model = Gcn::new(GcnConfig::new(8, 2));
        let mut rng = StdRng::seed_from_u64(3);
        let species = vec![Element::C; 5];
        let positions: Vec<[f64; 3]> = (0..5)
            .map(|_| {
                [
                    rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.5..1.5),
                ]
            })
            .collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        let rot = matgnn_graph::vec3::rotation_about([0.0, 0.0, 1.0], 1.0);
        let mut t = s.clone();
        t.rotate(&rot);
        let run = |s: &AtomicStructure| {
            let g = MolGraph::from_structure(s, 3.5);
            let b = GraphBatch::from_graphs(&[&g]);
            let mut tape = Tape::new();
            let (_, out) = model.bind_and_forward(&mut tape, &b);
            tape.value(out.forces).clone()
        };
        let f1 = run(&s);
        let f2 = run(&t);
        // Invariant features → identical predictions, NOT rotated ones.
        assert!(f1.allclose(&f2, 1e-4));
    }

    #[test]
    fn segments_cover_params() {
        let model = Gcn::new(GcnConfig::new(8, 3));
        let mut covered = 0;
        for seg in 0..model.n_segments() {
            let (start, end) = model.segment_param_range(seg);
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, model.params().len());
    }
}
