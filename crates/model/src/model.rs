//! The [`GnnModel`] abstraction shared by the EGNN family and baselines.
//!
//! Models expose their forward pass as a sequence of **segments** (embed,
//! one per message-passing layer, heads). Vanilla execution chains the
//! segments on one tape; activation-checkpointed execution (in
//! `matgnn-train`) runs each segment on its own tape and re-materializes
//! during backward — which is why segmentation lives in the model trait.

use matgnn_graph::GraphBatch;
use matgnn_tensor::{Tape, Var};

use crate::ParamSet;

/// The two prediction heads of an atomistic model.
#[derive(Debug, Clone, Copy)]
pub struct ModelOutput {
    /// Graph-level energies, `[n_graphs × 1]`.
    pub energy: Var,
    /// Node-level forces, `[n_nodes × 3]`.
    pub forces: Var,
}

/// A GNN for atomistic property prediction, executable segment by segment.
///
/// The segment contract:
///
/// * segment `0` takes an empty state and produces the initial state;
/// * segments `1..n_segments()-1` map state to state;
/// * the **last** segment returns `[energy, forces]` as its state.
///
/// State is an ordered list of tape variables; its meaning is private to
/// the model (EGNN uses `[node features h, coordinate displacement d]`).
pub trait GnnModel {
    /// The model's parameters (optimizer/collective order).
    fn params(&self) -> &ParamSet;

    /// Mutable access to the parameters (for optimizer updates).
    fn params_mut(&mut self) -> &mut ParamSet;

    /// Number of checkpointable segments (≥ 2: at least embed + heads).
    fn n_segments(&self) -> usize;

    /// The half-open parameter-index range `[start, end)` used by `seg`.
    fn segment_param_range(&self, seg: usize) -> (usize, usize);

    /// Runs one segment. `pvars` must be the binding of exactly the
    /// parameters in [`segment_param_range`](GnnModel::segment_param_range).
    fn segment_forward(
        &self,
        tape: &mut Tape,
        seg: usize,
        pvars: &[Var],
        batch: &GraphBatch,
        state: &[Var],
    ) -> Vec<Var>;

    /// A short human-readable description.
    fn describe(&self) -> String;

    /// Full forward pass on one tape: binds nothing itself — `pvars` must
    /// be the binding of the **entire** [`ParamSet`], in order.
    fn forward(&self, tape: &mut Tape, pvars: &[Var], batch: &GraphBatch) -> ModelOutput {
        let mut state: Vec<Var> = Vec::new();
        for seg in 0..self.n_segments() {
            let (start, end) = self.segment_param_range(seg);
            state = self.segment_forward(tape, seg, &pvars[start..end], batch, &state);
        }
        assert_eq!(state.len(), 2, "final segment must return [energy, forces]");
        ModelOutput {
            energy: state[0],
            forces: state[1],
        }
    }

    /// Convenience: bind all parameters and run the forward pass.
    fn bind_and_forward(&self, tape: &mut Tape, batch: &GraphBatch) -> (Vec<Var>, ModelOutput) {
        let pvars = self.params().bind(tape);
        let out = self.forward(tape, &pvars, batch);
        (pvars, out)
    }
}
