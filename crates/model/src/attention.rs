//! Graph attention utilities and the GAT model family.
//!
//! The paper conjectures (Sec. IV-A) that EGNN's *locality constraints*
//! cap its scaling beyond ~2 B parameters, pointing at attention
//! mechanisms — and cites graph attention networks (Veličković et al.) as
//! the GNN family that learns connection strengths instead of fixing
//! them. [`Gat`] provides that comparator: multi-layer attention over the
//! radius graph with learned per-edge weights, distance-aware scores, and
//! the same equivariant force head as the EGNN so the comparison isolates
//! the message-weighting mechanism.

use std::sync::Arc;

use matgnn_graph::GraphBatch;
use matgnn_tensor::{Tape, Tensor, Var};

use crate::mlp::{init_rng, Activation, Linear, LinearSpec, Mlp};
use crate::{GnnModel, ParamSet};

/// Numerically-stable softmax over edge scores grouped by segment
/// (typically the destination node of each edge).
///
/// The per-segment maximum is subtracted as a **detached** constant (the
/// standard stability trick; its subgradient contribution vanishes for
/// softmax), then `exp / segment-sum` is built from differentiable ops.
///
/// # Panics
///
/// Panics if `scores` is not a `[n_edges × 1]` column or `seg` length
/// disagrees.
pub fn segment_softmax(
    tape: &mut Tape,
    scores: Var,
    seg: &Arc<Vec<usize>>,
    n_segments: usize,
) -> Var {
    let n_edges = tape.shape(scores).rows();
    assert_eq!(tape.shape(scores).cols(), 1, "scores must be a column");
    assert_eq!(seg.len(), n_edges, "segment ids must match edge count");

    // Detached per-segment maxima.
    let values = tape.value(scores).clone();
    let mut seg_max = vec![f32::NEG_INFINITY; n_segments];
    for (e, &s) in seg.iter().enumerate() {
        seg_max[s] = seg_max[s].max(values.data()[e]);
    }
    let max_per_edge: Vec<f32> = seg
        .iter()
        .map(|&s| {
            if seg_max[s].is_finite() {
                seg_max[s]
            } else {
                0.0
            }
        })
        .collect();
    let max_const =
        tape.constant(Tensor::from_vec((n_edges, 1), max_per_edge).expect("edge max column"));

    let shifted = tape.sub(scores, max_const);
    let expv = tape.exp(shifted);
    let denom = tape.scatter_add_rows(expv, Arc::clone(seg), n_segments);
    // Guard empty segments against division by zero.
    let denom = tape.add_scalar(denom, 1e-12);
    let denom_per_edge = tape.gather_rows(denom, Arc::clone(seg));
    let inv = tape.recip(denom_per_edge);
    tape.mul(expv, inv)
}

/// Hyperparameters of the GAT comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatConfig {
    /// Input node feature width.
    pub node_feat_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Number of attention layers.
    pub n_layers: usize,
    /// Whether feature updates are residual.
    pub residual: bool,
    /// Initialization seed.
    pub seed: u64,
}

impl GatConfig {
    /// A config with default flags.
    pub fn new(hidden_dim: usize, n_layers: usize) -> Self {
        GatConfig {
            node_feat_dim: matgnn_graph::NODE_FEAT_DIM,
            hidden_dim,
            n_layers,
            residual: true,
            seed: 0,
        }
    }

    /// Exact scalar parameter count.
    pub fn param_count(&self) -> usize {
        let h = self.hidden_dim;
        let f = self.node_feat_dim;
        let mut total = f * h + h; // embed
                                   // Per layer: value transform W (h→h), score MLP [2h+1 → h → 1].
        let per_layer = (h * h + h) + Mlp::count_params(&[2 * h + 1, h, 1]);
        total += per_layer * self.n_layers;
        // Heads: energy [h → h → 1], force [2h+1 → h → 1].
        total += Mlp::count_params(&[h, h, 1]);
        total += Mlp::count_params(&[2 * h + 1, h, 1]);
        total
    }

    /// Finds the width whose parameter count at `n_layers` is closest to
    /// `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn with_target_params(target: usize, n_layers: usize) -> Self {
        assert!(target > 0, "target parameter count must be positive");
        let count = |w: usize| GatConfig::new(w, n_layers).param_count();
        let mut lo = 1usize;
        let mut hi = 2usize;
        while count(hi) < target {
            lo = hi;
            hi *= 2;
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if count(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let best = if target.abs_diff(count(lo)) <= target.abs_diff(count(hi)) {
            lo
        } else {
            hi
        };
        GatConfig::new(best.max(2), n_layers)
    }
}

#[derive(Debug, Clone)]
struct GatLayer {
    value: Linear,
    score: Mlp,
}

/// Graph attention network over the radius graph, with the EGNN's
/// equivariant force head.
///
/// Per layer, for each directed edge `(i, j)`:
///
/// ```text
/// s_ij = φ_s(h_i, h_j, ‖r_ij‖²)            (scalar score)
/// α_ij = softmax_j over edges into i (s_ij)
/// h_i  = silu( Σ_j α_ij · W h_j )  (+ h_i if residual)
/// ```
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
/// use matgnn_model::{Gat, GatConfig, GnnModel};
/// use matgnn_tensor::Tape;
///
/// let s = AtomicStructure::new(
///     vec![Element::C, Element::O],
///     vec![[0.0, 0.0, 0.0], [1.2, 0.0, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 2.0);
/// let batch = GraphBatch::from_graphs(&[&g]);
/// let model = Gat::new(GatConfig::new(8, 2));
/// let mut tape = Tape::new();
/// let (_, out) = model.bind_and_forward(&mut tape, &batch);
/// assert_eq!(tape.shape(out.forces).dims(), &[2, 3]);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gat {
    config: GatConfig,
    params: ParamSet,
    embed: Linear,
    layers: Vec<GatLayer>,
    energy_head: Mlp,
    force_head: Mlp,
    segment_ranges: Vec<(usize, usize)>,
}

impl Gat {
    /// Builds and initializes the model.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` or `n_layers` is zero.
    pub fn new(config: GatConfig) -> Self {
        assert!(config.hidden_dim > 0, "hidden_dim must be positive");
        assert!(config.n_layers > 0, "n_layers must be positive");
        let h = config.hidden_dim;
        let mut params = ParamSet::new();
        let mut rng = init_rng(config.seed);
        let mut segment_ranges = Vec::new();

        let mut start = params.len();
        let embed = Linear::new(
            &mut params,
            "embed",
            LinearSpec {
                in_dim: config.node_feat_dim,
                out_dim: h,
            },
            1.0,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        let mut layers = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            start = params.len();
            let value = Linear::new(
                &mut params,
                &format!("layer{l}.value"),
                LinearSpec {
                    in_dim: h,
                    out_dim: h,
                },
                1.0,
                &mut rng,
            );
            let score = Mlp::new(
                &mut params,
                &format!("layer{l}.score"),
                &[2 * h + 1, h, 1],
                Activation::Silu,
                Activation::None,
                1.0,
                &mut rng,
            );
            layers.push(GatLayer { value, score });
            segment_ranges.push((start, params.len()));
        }

        start = params.len();
        let energy_head = Mlp::new(
            &mut params,
            "energy_head",
            &[h, h, 1],
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
        let force_head = Mlp::new(
            &mut params,
            "force_head",
            &[2 * h + 1, h, 1],
            Activation::Silu,
            Activation::None,
            0.1,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        debug_assert_eq!(
            params.n_scalars(),
            config.param_count(),
            "param count formula drift"
        );
        Gat {
            config,
            params,
            embed,
            layers,
            energy_head,
            force_head,
            segment_ranges,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &GatConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn n_params(&self) -> usize {
        self.params.n_scalars()
    }

    /// Edge inputs `[h_src ‖ h_dst ‖ ‖r‖²]` with constant radius-edge
    /// vectors (coordinates are not updated by GAT layers).
    fn edge_inputs(&self, tape: &mut Tape, batch: &GraphBatch, h: Var) -> (Var, Var) {
        let rel = tape.constant(batch.edge_vectors().clone());
        let sq = tape.square(rel);
        let dist2 = tape.sum_axis1(sq);
        let hi = tape.gather_rows(h, Arc::clone(batch.src()));
        let hj = tape.gather_rows(h, Arc::clone(batch.dst()));
        let m_in = tape.concat_cols(&[hi, hj, dist2]);
        (m_in, rel)
    }
}

impl GnnModel for Gat {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn n_segments(&self) -> usize {
        self.config.n_layers + 2
    }

    fn segment_param_range(&self, seg: usize) -> (usize, usize) {
        self.segment_ranges[seg]
    }

    fn segment_forward(
        &self,
        tape: &mut Tape,
        seg: usize,
        pvars: &[Var],
        batch: &GraphBatch,
        state: &[Var],
    ) -> Vec<Var> {
        let (offset, _) = self.segment_ranges[seg];
        let last = self.n_segments() - 1;
        if seg == 0 {
            let feats = tape.constant(batch.node_feats().clone());
            let h = self.embed.forward(tape, pvars, offset, feats);
            let h = tape.silu(h);
            vec![h]
        } else if seg < last {
            let layer = &self.layers[seg - 1];
            let h = state[0];
            let n = batch.n_nodes();
            let (m_in, _) = self.edge_inputs(tape, batch, h);
            let scores = layer.score.forward(tape, pvars, offset, m_in);
            let attn = segment_softmax(tape, scores, batch.src(), n);
            let v = layer.value.forward(tape, pvars, offset, h);
            let vj = tape.gather_rows(v, Arc::clone(batch.dst()));
            let weighted = tape.mul_col(vj, attn);
            let agg = tape.scatter_add_rows(weighted, Arc::clone(batch.src()), n);
            let out = tape.silu(agg);
            let h_next = if self.config.residual {
                tape.add(h, out)
            } else {
                out
            };
            vec![h_next]
        } else {
            let h = state[0];
            let node_e = self.energy_head.forward(tape, pvars, offset, h);
            let energy =
                tape.scatter_add_rows(node_e, Arc::clone(batch.node_graph()), batch.n_graphs());
            let (m_in, rel) = self.edge_inputs(tape, batch, h);
            let w = self.force_head.forward(tape, pvars, offset, m_in);
            let weighted = tape.mul_col(rel, w);
            let forces = tape.scatter_add_rows(weighted, Arc::clone(batch.src()), batch.n_nodes());
            vec![energy, forces]
        }
    }

    fn describe(&self) -> String {
        format!(
            "gat(h={}, L={}, {} params{})",
            self.config.hidden_dim,
            self.config.n_layers,
            self.n_params(),
            if self.config.residual {
                ", residual"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_graph::vec3::{matvec, rotation_about};
    use matgnn_graph::{AtomicStructure, Element, MolGraph};
    use matgnn_tensor::gradcheck;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(n: usize, seed: u64) -> GraphBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i % 3) as f64 * 1.3 + rng.gen_range(-0.3..0.3),
                    ((i / 3) % 3) as f64 * 1.3 + rng.gen_range(-0.3..0.3),
                    (i / 9) as f64 * 1.3,
                ]
            })
            .collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        let g = MolGraph::from_structure(&s, 3.0);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut tape = Tape::new();
        let scores = tape.param(Tensor::from_vec((5, 1), vec![1.0, -2.0, 0.5, 3.0, 3.0]).unwrap());
        let seg = Arc::new(vec![0usize, 0, 1, 1, 1]);
        let soft = segment_softmax(&mut tape, scores, &seg, 2);
        let v = tape.value(soft);
        let s0 = v.get(0, 0) + v.get(1, 0);
        let s1 = v.get(2, 0) + v.get(3, 0) + v.get(4, 0);
        assert!((s0 - 1.0).abs() < 1e-6, "segment 0 sums to {s0}");
        assert!((s1 - 1.0).abs() < 1e-6, "segment 1 sums to {s1}");
        // All weights positive; the larger score dominates its segment.
        assert!(v.data().iter().all(|&x| x > 0.0));
        assert!(v.get(0, 0) > v.get(1, 0));
    }

    #[test]
    fn segment_softmax_stable_for_large_scores() {
        let mut tape = Tape::new();
        let scores = tape.param(Tensor::from_vec((3, 1), vec![1000.0, 999.0, -1000.0]).unwrap());
        let seg = Arc::new(vec![0usize, 0, 0]);
        let soft = segment_softmax(&mut tape, scores, &seg, 1);
        let v = tape.value(soft);
        assert!(v.is_finite(), "overflowed: {v:?}");
        let total: f32 = v.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let scores = Tensor::randn((6, 1), 0.8, &mut rng);
        let seg = Arc::new(vec![0usize, 0, 1, 1, 2, 2]);
        gradcheck::check_grad(
            &[scores],
            move |tape, vars| {
                let soft = segment_softmax(tape, vars[0], &Arc::clone(&seg), 3);
                // A non-trivial downstream function of the weights.
                let sq = tape.square(soft);
                tape.mean_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn gat_output_shapes_and_param_count() {
        let cfg = GatConfig::new(8, 2);
        let model = Gat::new(cfg);
        assert_eq!(model.n_params(), cfg.param_count());
        let b = random_batch(7, 1);
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, &b);
        assert_eq!(tape.shape(out.energy).dims(), &[1, 1]);
        assert_eq!(tape.shape(out.forces).dims(), &[7, 3]);
        assert!(tape.value(out.energy).is_finite());
    }

    #[test]
    fn gat_gradcheck() {
        let model = Gat::new(GatConfig::new(4, 2));
        let b = random_batch(5, 2);
        let inputs: Vec<Tensor> = model.params().iter().map(|e| e.tensor.clone()).collect();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let out = model.forward(tape, vars, &b);
                let e2 = tape.square(out.energy);
                let f2 = tape.square(out.forces);
                let le = tape.mean_all(e2);
                let lf = tape.mean_all(f2);
                tape.add(le, lf)
            },
            3e-2,
        );
    }

    #[test]
    fn gat_energy_rotation_invariant_forces_covariant() {
        // The force head is the same equivariant construction as EGNN's,
        // and features depend on geometry only via ‖r‖².
        let model = Gat::new(GatConfig::new(8, 2));
        let mut rng = StdRng::seed_from_u64(5);
        let species = vec![Element::C; 6];
        let positions: Vec<[f64; 3]> = (0..6)
            .map(|_| {
                [
                    rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.5..1.5),
                    rng.gen_range(-1.5..1.5),
                ]
            })
            .collect();
        let s = AtomicStructure::new(species, positions).unwrap();
        let rot = rotation_about([0.5, -0.3, 1.0], 0.9);
        let mut r = s.clone();
        r.rotate(&rot);
        let run = |s: &AtomicStructure| {
            let g = MolGraph::from_structure(s, 3.5);
            let b = GraphBatch::from_graphs(&[&g]);
            let mut tape = Tape::new();
            let (_, out) = model.bind_and_forward(&mut tape, &b);
            (
                tape.value(out.energy).clone(),
                tape.value(out.forces).clone(),
            )
        };
        let (e1, f1) = run(&s);
        let (e2, f2) = run(&r);
        assert!(e1.allclose(&e2, 1e-4), "GAT energy changed under rotation");
        for a in 0..6 {
            let v = [
                f1.get(a, 0) as f64,
                f1.get(a, 1) as f64,
                f1.get(a, 2) as f64,
            ];
            let rv = matvec(&rot, v);
            for (k, &rvk) in rv.iter().enumerate() {
                assert!((rvk as f32 - f2.get(a, k)).abs() < 1e-4, "atom {a}");
            }
        }
    }

    #[test]
    fn gat_checkpointing_segments_cover_params() {
        let model = Gat::new(GatConfig::new(8, 3));
        let mut covered = 0;
        for seg in 0..model.n_segments() {
            let (start, end) = model.segment_param_range(seg);
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, model.params().len());
    }

    #[test]
    fn target_params_search() {
        let cfg = GatConfig::with_target_params(20_000, 3);
        let got = cfg.param_count() as f64;
        assert!((got / 20_000.0 - 1.0).abs() < 0.3, "{got}");
    }
}
