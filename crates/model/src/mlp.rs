//! Linear layers and multilayer perceptrons — the φ networks inside every
//! EGNN block.

use rand::rngs::StdRng;
use rand::Rng;

use matgnn_tensor::{Tape, Tensor, Var};

use crate::ParamSet;

/// Activation functions available between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// SiLU / swish (the default throughout the EGNN, as in Satorras et al.).
    Silu,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no activation).
    None,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Silu => tape.silu(x),
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::None => x,
        }
    }
}

/// Shape specification of a linear layer (used for parameter counting and
/// initialization without building tensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearSpec {
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
}

impl LinearSpec {
    /// Scalar parameter count: weights plus bias.
    pub fn n_params(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }
}

/// A dense layer `y = x·W + b` whose parameters live in a shared
/// [`ParamSet`], referenced by index.
#[derive(Debug, Clone)]
pub struct Linear {
    weight_idx: usize,
    bias_idx: usize,
    spec: LinearSpec,
}

impl Linear {
    /// Creates the layer, registering Xavier-initialized weights (scaled by
    /// `gain`) and zero biases into `params` under `name`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        spec: LinearSpec,
        gain: f32,
        rng: &mut StdRng,
    ) -> Self {
        let scale = gain * (6.0 / (spec.in_dim + spec.out_dim) as f32).sqrt();
        let weight = Tensor::rand_uniform((spec.in_dim, spec.out_dim), scale, rng);
        let bias = Tensor::zeros(spec.out_dim);
        let weight_idx = params.push(format!("{name}.weight"), weight);
        let bias_idx = params.push(format!("{name}.bias"), bias);
        Linear {
            weight_idx,
            bias_idx,
            spec,
        }
    }

    /// The layer's shape spec.
    pub fn spec(&self) -> LinearSpec {
        self.spec
    }

    /// Applies the layer: `pvars` must be the full binding of the owning
    /// [`ParamSet`], offset by `param_offset` if only a slice was bound.
    pub fn forward(&self, tape: &mut Tape, pvars: &[Var], param_offset: usize, x: Var) -> Var {
        let w = pvars[self.weight_idx - param_offset];
        let b = pvars[self.bias_idx - param_offset];
        let y = tape.matmul(x, w);
        tape.add_row(y, b)
    }
}

/// A stack of [`Linear`] layers with a hidden activation between them and
/// an optional final activation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    final_act: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[8, 16, 1]` for
    /// `8 → 16 → 1`. The last layer's weights are scaled by `final_gain`
    /// (small values stabilize coordinate/force outputs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        widths: &[usize],
        hidden_act: Activation,
        final_act: Activation,
        final_gain: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least input and output widths"
        );
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for l in 0..widths.len() - 1 {
            let gain = if l == widths.len() - 2 {
                final_gain
            } else {
                1.0
            };
            layers.push(Linear::new(
                params,
                &format!("{name}.{l}"),
                LinearSpec {
                    in_dim: widths[l],
                    out_dim: widths[l + 1],
                },
                gain,
                rng,
            ));
        }
        Mlp {
            layers,
            hidden_act,
            final_act,
        }
    }

    /// Scalar parameter count of an MLP with these widths.
    pub fn count_params(widths: &[usize]) -> usize {
        widths
            .windows(2)
            .map(|w| {
                LinearSpec {
                    in_dim: w[0],
                    out_dim: w[1],
                }
                .n_params()
            })
            .sum()
    }

    /// Applies the MLP.
    pub fn forward(&self, tape: &mut Tape, pvars: &[Var], param_offset: usize, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, pvars, param_offset, h);
            h = if l == last {
                self.final_act.apply(tape, h)
            } else {
                self.hidden_act.apply(tape, h)
            };
        }
        h
    }
}

/// Layer normalization over feature rows: `γ·(x − μ)/σ + β`, with learned
/// per-feature scale `γ` and shift `β` — the Transformer-lineage
/// stabilizer (one of the paper's "LLM-inspired techniques", applied here
/// to deep GNN feature updates).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma_idx: usize,
    beta_idx: usize,
    dim: usize,
}

impl LayerNorm {
    /// Numerical floor inside the variance square root (shared with the
    /// tape-free frozen forward, which must match it exactly).
    pub const EPS: f32 = 1e-5;

    /// Creates a layer norm over `dim` features, registering `γ = 1` and
    /// `β = 0` into `params`.
    pub fn new(params: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gamma_idx = params.push(format!("{name}.gamma"), Tensor::ones(dim));
        let beta_idx = params.push(format!("{name}.beta"), Tensor::zeros(dim));
        LayerNorm {
            gamma_idx,
            beta_idx,
            dim,
        }
    }

    /// Scalar parameter count (`2·dim`).
    pub fn count_params(dim: usize) -> usize {
        2 * dim
    }

    /// Applies the normalization row-wise.
    pub fn forward(&self, tape: &mut Tape, pvars: &[Var], param_offset: usize, x: Var) -> Var {
        let gamma = pvars[self.gamma_idx - param_offset];
        let beta = pvars[self.beta_idx - param_offset];
        let inv_m = 1.0 / self.dim as f32;
        let mean = tape.sum_axis1(x);
        let mean = tape.scale(mean, inv_m);
        let neg_mean = tape.neg(mean);
        let centered = tape.add_col(x, neg_mean);
        let sq = tape.square(centered);
        let var = tape.sum_axis1(sq);
        let var = tape.scale(var, inv_m);
        let var = tape.add_scalar(var, Self::EPS);
        let std = tape.sqrt(var);
        let inv_std = tape.recip(std);
        let normed = tape.mul_col(centered, inv_std);
        let scaled = tape.mul_row(normed, gamma);
        tape.add_row(scaled, beta)
    }
}

/// A deterministic RNG for weight initialization.
pub fn init_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Draws a fresh sub-seed (lets one model seed derive independent streams
/// for independent submodules).
pub fn sub_seed(rng: &mut StdRng) -> u64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_count() {
        let spec = LinearSpec {
            in_dim: 4,
            out_dim: 3,
        };
        assert_eq!(spec.n_params(), 15);
        let mut params = ParamSet::new();
        let mut rng = init_rng(1);
        let lin = Linear::new(&mut params, "l", spec, 1.0, &mut rng);
        assert_eq!(params.n_scalars(), 15);
        let mut tape = Tape::new();
        let pvars = params.bind(&mut tape);
        let x = tape.constant(Tensor::ones((5, 4)));
        let y = lin.forward(&mut tape, &pvars, 0, x);
        assert_eq!(tape.shape(y).dims(), &[5, 3]);
    }

    #[test]
    fn mlp_count_matches_built() {
        let widths = [7, 16, 16, 1];
        let mut params = ParamSet::new();
        let mut rng = init_rng(2);
        let _ = Mlp::new(
            &mut params,
            "mlp",
            &widths,
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
        assert_eq!(params.n_scalars(), Mlp::count_params(&widths));
    }

    #[test]
    fn mlp_forward_shape_and_determinism() {
        let mut params = ParamSet::new();
        let mut rng = init_rng(3);
        let mlp = Mlp::new(
            &mut params,
            "mlp",
            &[4, 8, 2],
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
        let run = |params: &ParamSet| {
            let mut tape = Tape::new();
            let pvars = params.bind(&mut tape);
            let x = tape.constant(Tensor::ones((3, 4)));
            let y = mlp.forward(&mut tape, &pvars, 0, x);
            tape.value(y).clone()
        };
        let y1 = run(&params);
        let y2 = run(&params);
        assert_eq!(y1.shape().dims(), &[3, 2]);
        assert!(y1.allclose(&y2, 0.0), "same params must give same output");
    }

    #[test]
    fn same_seed_same_init() {
        let build = |seed| {
            let mut params = ParamSet::new();
            let mut rng = init_rng(seed);
            let _ = Mlp::new(
                &mut params,
                "m",
                &[3, 5, 1],
                Activation::Relu,
                Activation::None,
                1.0,
                &mut rng,
            );
            params.flatten()
        };
        assert!(build(7).allclose(&build(7), 0.0));
        assert!(!build(7).allclose(&build(8), 1e-9));
    }

    #[test]
    fn final_gain_scales_last_layer() {
        let mut params = ParamSet::new();
        let mut rng = init_rng(5);
        let _ = Mlp::new(
            &mut params,
            "m",
            &[8, 8, 8],
            Activation::Silu,
            Activation::None,
            0.01,
            &mut rng,
        );
        // Last weight matrix is entry index 2*1 (weights at even indices).
        let first_w = params.tensor(0).max_abs();
        let last_w = params.tensor(2).max_abs();
        assert!(
            last_w < first_w * 0.1,
            "final gain not applied: {first_w} vs {last_w}"
        );
    }

    #[test]
    fn activations_apply() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(2usize, vec![-1.0, 1.0]).unwrap());
        let y = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.value(y).data(), &[0.0, 1.0]);
        let z = Activation::None.apply(&mut tape, x);
        assert_eq!(z, x);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut params = ParamSet::new();
        let ln = LayerNorm::new(&mut params, "ln", 6);
        assert_eq!(params.n_scalars(), LayerNorm::count_params(6));
        let mut tape = Tape::new();
        let pvars = params.bind(&mut tape);
        let mut rng = init_rng(9);
        let x = tape.constant(Tensor::randn((4, 6), 3.0, &mut rng));
        let y = ln.forward(&mut tape, &pvars, 0, x);
        let v = tape.value(y);
        for r in 0..4 {
            let row: Vec<f32> = (0..6).map(|c| v.get(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_gradcheck() {
        use matgnn_tensor::gradcheck;
        let mut params = ParamSet::new();
        let ln = LayerNorm::new(&mut params, "ln", 4);
        let mut rng = init_rng(10);
        let x0 = Tensor::randn((3, 4), 1.0, &mut rng);
        let inputs: Vec<Tensor> = params
            .iter()
            .map(|e| e.tensor.clone())
            .chain(std::iter::once(x0))
            .collect();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let y = ln.forward(tape, &vars[..2], 0, vars[2]);
                let q = tape.square(y);
                tape.mean_all(q)
            },
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_too_few_widths_panics() {
        let mut params = ParamSet::new();
        let mut rng = init_rng(6);
        let _ = Mlp::new(
            &mut params,
            "m",
            &[3],
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
    }
}
