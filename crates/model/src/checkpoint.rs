//! Model checkpointing: serialize parameters (and EGNN configs) to a
//! compact binary format.
//!
//! The paper's headline deliverable is a *foundational model* — a trained
//! artifact downstream users load and fine-tune. This module provides that
//! artifact format: a versioned, named-tensor container
//! (`MGNN` magic + name/shape/data records) plus typed save/load for the
//! [`Egnn`], used by the transfer-learning experiment.

use std::fmt;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use matgnn_tensor::{Shape, Tensor};

use crate::{Egnn, EgnnConfig, GnnModel, ParamSet};

const MAGIC: &[u8; 4] = b"MGNN";
const VERSION: u32 = 1;

/// Error while reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the `MGNN` magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A name was not valid UTF-8.
    BadName,
    /// A stored entry does not match the receiving model
    /// (name or shape mismatch at the given index).
    Mismatch {
        /// Entry index that disagreed.
        index: usize,
        /// What disagreed.
        detail: String,
    },
    /// An I/O error (when reading/writing files).
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a matgnn checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint buffer truncated"),
            CheckpointError::BadName => write!(f, "invalid parameter name encoding"),
            CheckpointError::Mismatch { index, detail } => {
                write!(f, "parameter {index} mismatch: {detail}")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn need(buf: &Bytes, n: usize) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(CheckpointError::Truncated)
    } else {
        Ok(())
    }
}

/// Serializes a parameter set: names, shapes, and raw f32 data.
pub fn params_to_bytes(params: &ParamSet) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32(VERSION);
    buf.put_u32(params.len() as u32);
    for entry in params.iter() {
        let name = entry.name.as_bytes();
        buf.put_u32(name.len() as u32);
        buf.put_slice(name);
        let shape = entry.tensor.shape();
        buf.put_u32(shape.rank() as u32);
        for &d in shape.dims() {
            buf.put_u32(d as u32);
        }
        for &v in entry.tensor.data() {
            buf.put_f32(v);
        }
    }
    buf.freeze()
}

/// Deserializes a parameter set written by [`params_to_bytes`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] on malformed input.
pub fn params_from_bytes(data: &[u8]) -> Result<ParamSet, CheckpointError> {
    let mut buf = Bytes::copy_from_slice(data);
    need(&buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    need(&buf, 4)?;
    let count = buf.get_u32() as usize;
    let mut params = ParamSet::new();
    for _ in 0..count {
        need(&buf, 4)?;
        let name_len = buf.get_u32() as usize;
        need(&buf, name_len)?;
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| CheckpointError::BadName)?;
        need(&buf, 4)?;
        let rank = buf.get_u32() as usize;
        need(&buf, rank * 4)?;
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32() as usize).collect();
        let shape = Shape::new(dims);
        need(&buf, shape.numel() * 4)?;
        let data: Vec<f32> = (0..shape.numel()).map(|_| buf.get_f32()).collect();
        params.push(
            name,
            Tensor::from_vec(shape, data).expect("validated length"),
        );
    }
    Ok(params)
}

/// Loads stored parameters into an existing set, verifying that names and
/// shapes line up entry by entry.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] on any disagreement (the set is
/// left partially updated only on success paths — verification happens
/// before any write).
pub fn load_params_into(params: &mut ParamSet, data: &[u8]) -> Result<(), CheckpointError> {
    let loaded = params_from_bytes(data)?;
    if loaded.len() != params.len() {
        return Err(CheckpointError::Mismatch {
            index: loaded.len().min(params.len()),
            detail: format!("entry count {} vs {}", loaded.len(), params.len()),
        });
    }
    for (i, (a, b)) in loaded.iter().zip(params.iter()).enumerate() {
        if a.name != b.name {
            return Err(CheckpointError::Mismatch {
                index: i,
                detail: format!("name {} vs {}", a.name, b.name),
            });
        }
        if a.tensor.shape() != b.tensor.shape() {
            return Err(CheckpointError::Mismatch {
                index: i,
                detail: format!("shape {} vs {}", a.tensor.shape(), b.tensor.shape()),
            });
        }
    }
    for (i, entry) in params.iter_mut().enumerate() {
        entry.tensor = loaded.tensor(i).clone();
    }
    Ok(())
}

/// A fully self-describing EGNN checkpoint: config + parameters.
pub fn egnn_to_bytes(model: &Egnn) -> Bytes {
    let cfg = model.config();
    let mut buf = BytesMut::new();
    buf.put_slice(b"EGNN");
    buf.put_u32(VERSION);
    buf.put_u32(cfg.node_feat_dim as u32);
    buf.put_u32(cfg.hidden_dim as u32);
    buf.put_u32(cfg.n_layers as u32);
    buf.put_u8(cfg.residual as u8);
    buf.put_u8(cfg.update_coords as u8);
    buf.put_u8(cfg.edge_gate as u8);
    buf.put_u8(cfg.layer_norm as u8);
    buf.put_u32(cfg.n_rbf as u32);
    buf.put_u64(cfg.seed);
    buf.put_slice(&params_to_bytes(model.params()));
    buf.freeze()
}

/// Reconstructs an EGNN (config + weights) from [`egnn_to_bytes`] output.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on malformed input or a parameter layout
/// that no longer matches the config (version skew).
pub fn egnn_from_bytes(data: &[u8]) -> Result<Egnn, CheckpointError> {
    let mut buf = Bytes::copy_from_slice(data);
    need(&buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != b"EGNN" {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    need(&buf, 4 * 3 + 4 + 4 + 8)?;
    let node_feat_dim = buf.get_u32() as usize;
    let hidden_dim = buf.get_u32() as usize;
    let n_layers = buf.get_u32() as usize;
    let residual = buf.get_u8() != 0;
    let update_coords = buf.get_u8() != 0;
    let edge_gate = buf.get_u8() != 0;
    let layer_norm = buf.get_u8() != 0;
    let n_rbf = buf.get_u32() as usize;
    let seed = buf.get_u64();
    let cfg = EgnnConfig {
        node_feat_dim,
        hidden_dim,
        n_layers,
        residual,
        update_coords,
        edge_gate,
        layer_norm,
        n_rbf,
        seed,
    };
    let mut model = Egnn::new(cfg);
    let rest: Vec<u8> = buf.to_vec();
    load_params_into(model.params_mut(), &rest)?;
    Ok(model)
}

/// Writes an EGNN checkpoint to a file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem errors.
pub fn save_egnn(model: &Egnn, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, egnn_to_bytes(model)).map_err(|e| CheckpointError::Io(e.to_string()))
}

/// Reads an EGNN checkpoint from a file.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on filesystem or format errors.
pub fn load_egnn(path: impl AsRef<Path>) -> Result<Egnn, CheckpointError> {
    let data = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    egnn_from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::init_rng;
    use rand::Rng;

    fn random_params() -> ParamSet {
        let mut rng = init_rng(7);
        let mut p = ParamSet::new();
        p.push("a.weight", Tensor::randn((3, 4), 1.0, &mut rng));
        p.push("a.bias", Tensor::randn(4usize, 1.0, &mut rng));
        p.push("scalarish", Tensor::scalar(rng.gen()));
        p
    }

    #[test]
    fn params_roundtrip_exact() {
        let p = random_params();
        let bytes = params_to_bytes(&p);
        let q = params_from_bytes(&bytes).unwrap();
        assert_eq!(q.len(), p.len());
        for (a, b) in p.iter().zip(q.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.tensor.shape(), b.tensor.shape());
            assert_eq!(a.tensor.data(), b.tensor.data());
        }
    }

    #[test]
    fn load_into_verifies_layout() {
        let p = random_params();
        let bytes = params_to_bytes(&p);
        // Same layout: loads fine.
        let mut q = random_params();
        q.tensor_mut(0).fill(0.0);
        load_params_into(&mut q, &bytes).unwrap();
        assert_eq!(q.tensor(0).data(), p.tensor(0).data());
        // Different shape: rejected before any write.
        let mut bad = ParamSet::new();
        bad.push("a.weight", Tensor::zeros((4, 3)));
        bad.push("a.bias", Tensor::zeros(4usize));
        bad.push("scalarish", Tensor::scalar(0.0));
        let err = load_params_into(&mut bad, &bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Mismatch { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let p = random_params();
        let bytes = params_to_bytes(&p);
        assert_eq!(
            params_from_bytes(b"nope0000").unwrap_err(),
            CheckpointError::BadMagic
        );
        assert_eq!(
            params_from_bytes(b"no").unwrap_err(),
            CheckpointError::Truncated
        );
        let cut = &bytes[..bytes.len() / 2];
        assert_eq!(
            params_from_bytes(cut).unwrap_err(),
            CheckpointError::Truncated
        );
        let mut wrong_version = bytes.to_vec();
        wrong_version[4..8].copy_from_slice(&99u32.to_be_bytes());
        assert_eq!(
            params_from_bytes(&wrong_version).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
    }

    #[test]
    fn egnn_roundtrip_preserves_predictions() {
        use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
        use matgnn_tensor::Tape;

        let model = Egnn::new(EgnnConfig::new(8, 2).with_seed(21).with_residual(true));
        let bytes = egnn_to_bytes(&model);
        let loaded = egnn_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.config(), model.config());

        let s = AtomicStructure::new(
            vec![Element::C, Element::O, Element::H],
            vec![[0.0, 0.0, 0.0], [1.2, 0.0, 0.0], [-0.5, 0.9, 0.0]],
        )
        .unwrap();
        let g = MolGraph::from_structure(&s, 3.0);
        let batch = GraphBatch::from_graphs(&[&g]);
        let run = |m: &Egnn| {
            let mut tape = Tape::new();
            let (_, out) = m.bind_and_forward(&mut tape, &batch);
            tape.value(out.energy).clone()
        };
        assert!(
            run(&model).allclose(&run(&loaded), 0.0),
            "predictions drifted"
        );
    }

    #[test]
    fn egnn_file_roundtrip() {
        let model = Egnn::new(EgnnConfig::new(6, 2).with_seed(5));
        let dir = std::env::temp_dir().join("matgnn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mgnn");
        save_egnn(&model, &path).unwrap();
        let loaded = load_egnn(&path).unwrap();
        assert!(model
            .params()
            .flatten()
            .allclose(&loaded.params().flatten(), 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_egnn("/nonexistent/matgnn.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
