//! Tape-free inference: a frozen, immutable EGNN forward pass.
//!
//! Training runs through the autodiff [`Tape`](matgnn_tensor::Tape), which
//! records an op graph, keeps every intermediate alive for backward, and
//! pays a tape-node allocation per op. Inference needs none of that: the
//! [`FrozenEgnn`] here is built once from a trained model's parameters and
//! then runs the identical layer equations directly on [`Tensor`]s —
//! activations overwrite their inputs in place, temporaries cycle through
//! the size-bucketed recycler, and steady-state requests allocate nothing.
//!
//! Two freeze-time weight transformations make the forward cheaper without
//! changing what is computed:
//!
//! * **Concat elimination.** The first layer of `φ_e` (and the force head)
//!   consumes `[h_src ‖ h_dst ‖ dist_feat]`; its `[2h+e, h]` weight matrix
//!   is split at freeze time into row blocks `W_hi`, `W_hj`, `W_d` so the
//!   concatenated `[E, 2h+e]` edge matrix is never materialized —
//!   `m = h_src·W_hi + h_dst·W_hj + df·W_d`. Same for `φ_h`'s `[2h, h]`
//!   first layer.
//! * **Transform-then-gather.** `h·W_hi` is computed once per *node* and
//!   then gathered per *edge* (matmul rows are independent, so gathering
//!   before or after the product yields the same rows) — with mean degree
//!   `deg`, that divides the first-layer edge FLOPs by `deg`.
//!
//! Both transformations regroup floating-point accumulation (three partial
//! matmul sums instead of one fused chain), so the frozen forward matches
//! the tape forward to tight *tolerance*, not bitwise; the frozen forward
//! itself remains bitwise deterministic for any pool size within a SIMD
//! tier, exactly like the training kernels.

use std::fmt;

use matgnn_graph::GraphBatch;
use matgnn_tensor::Tensor;

use crate::mlp::{Activation, LayerNorm};
use crate::{Egnn, EgnnConfig, GnnModel, ParamSet};

/// Upper end of the Gaussian RBF center grid, in Å (mirrors `egnn.rs`).
const RBF_RMAX: f32 = 3.5;

/// Why a parameter set could not be frozen into an inference engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreezeError {
    /// The parameter set ended before the architecture was fully bound.
    MissingParam {
        /// Name the architecture expected next.
        expected: String,
    },
    /// A parameter's name did not match the architecture-derived name.
    NameMismatch {
        /// Position in the parameter set.
        index: usize,
        /// Name the architecture expected.
        expected: String,
        /// Name found in the checkpoint.
        found: String,
    },
    /// A parameter's shape did not match the architecture-derived shape.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the architecture expected, as `rows × cols` (`cols = 0`
        /// for vectors).
        expected: (usize, usize),
        /// Element count found in the checkpoint.
        found: usize,
    },
    /// The parameter set has more entries than the architecture uses.
    TrailingParams {
        /// Number of unconsumed entries.
        extra: usize,
    },
}

impl fmt::Display for FreezeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreezeError::MissingParam { expected } => {
                write!(f, "parameter set ended early: expected `{expected}`")
            }
            FreezeError::NameMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {index}: expected `{expected}`, found `{found}` \
                 (config does not describe this checkpoint)"
            ),
            FreezeError::ShapeMismatch {
                name,
                expected: (r, c),
                found,
            } => write!(
                f,
                "parameter `{name}`: expected shape {r}×{c}, found {found} elements"
            ),
            FreezeError::TrailingParams { extra } => {
                write!(f, "parameter set has {extra} unconsumed entries")
            }
        }
    }
}

impl std::error::Error for FreezeError {}

/// A dense layer with materialized (frozen) weights.
#[derive(Debug, Clone)]
struct FrozenLinear {
    w: Tensor,
    b: Tensor,
}

impl FrozenLinear {
    /// `x·W + b`, bias added in place on the fresh product.
    fn apply(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.w);
        y.add_row_in_place(&self.b);
        y
    }
}

/// First layer of an edge MLP with the `[h_src ‖ h_dst ‖ dist_feat]`
/// weight matrix pre-split into row blocks (concat elimination). The two
/// node-side blocks are stored column-paired (`[W_hi | W_hj]`, shape
/// `h × 2·out`) so one node-level matmul produces both partial products
/// and the per-edge assembly is a single fused pass.
#[derive(Debug, Clone)]
struct SplitEdgeLinear {
    w_pair: Tensor,
    w_d: Tensor,
    b: Tensor,
}

/// Packs the `h_src` / `h_dst` row blocks side by side: `[W_hi | W_hj]`.
fn pair_cols(w_hi: &Tensor, w_hj: &Tensor) -> Tensor {
    let (rows, cols) = (w_hi.rows(), w_hi.cols());
    let mut out = Tensor::zeros((rows, 2 * cols));
    let o = out.data_mut();
    let a = w_hi.data();
    let b = w_hj.data();
    for r in 0..rows {
        o[r * 2 * cols..r * 2 * cols + cols].copy_from_slice(&a[r * cols..(r + 1) * cols]);
        o[r * 2 * cols + cols..(r + 1) * 2 * cols].copy_from_slice(&b[r * cols..(r + 1) * cols]);
    }
    out
}

/// First layer of `φ_h` with the `[h ‖ agg]` weight split into row blocks.
#[derive(Debug, Clone)]
struct SplitNodeLinear {
    w_h: Tensor,
    w_agg: Tensor,
    b: Tensor,
}

/// One frozen EGNN message-passing layer.
#[derive(Debug, Clone)]
struct FrozenLayer {
    phi_e1: SplitEdgeLinear,
    phi_e2: FrozenLinear,
    phi_x: Option<(FrozenLinear, FrozenLinear)>,
    phi_h1: SplitNodeLinear,
    phi_h2: FrozenLinear,
    gate: Option<FrozenLinear>,
    norm: Option<(Tensor, Tensor)>,
}

/// Gaussian RBF constants (negated centers and width).
#[derive(Debug, Clone)]
struct RbfConsts {
    neg_mu: Tensor,
    gamma: f32,
}

/// An immutable, tape-free EGNN forward pass.
///
/// Built once from a trained model (or a checkpointed [`ParamSet`] plus
/// its [`EgnnConfig`]); [`predict`](FrozenEgnn::predict) then serves any
/// number of batches from shared state (`&self`), so one engine can back a
/// whole worker pool.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
/// use matgnn_model::{Egnn, EgnnConfig, FrozenEgnn};
///
/// let s = AtomicStructure::new(
///     vec![Element::O, Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 2.0);
/// let batch = GraphBatch::from_graphs(&[&g]);
///
/// let model = Egnn::new(EgnnConfig::new(16, 2));
/// let frozen = FrozenEgnn::freeze(&model);
/// let (energy, forces) = frozen.predict(&batch);
/// assert_eq!(energy.shape().dims(), &[1, 1]);
/// assert_eq!(forces.shape().dims(), &[3, 3]);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrozenEgnn {
    config: EgnnConfig,
    embed: FrozenLinear,
    layers: Vec<FrozenLayer>,
    energy1: FrozenLinear,
    energy2: FrozenLinear,
    force1: SplitEdgeLinear,
    force2: FrozenLinear,
    rbf: Option<RbfConsts>,
}

/// Sequential reader over a [`ParamSet`], checking each entry's
/// architecture-derived name and shape as it is consumed.
struct Cursor<'a> {
    params: &'a ParamSet,
    next: usize,
}

impl<'a> Cursor<'a> {
    fn take(
        &mut self,
        name: String,
        numel: usize,
        shape: (usize, usize),
    ) -> Result<&'a Tensor, FreezeError> {
        if self.next >= self.params.len() {
            return Err(FreezeError::MissingParam { expected: name });
        }
        let entry = self.params.entry(self.next);
        if entry.name != name {
            return Err(FreezeError::NameMismatch {
                index: self.next,
                expected: name,
                found: entry.name.clone(),
            });
        }
        if entry.tensor.numel() != numel {
            return Err(FreezeError::ShapeMismatch {
                name,
                expected: shape,
                found: entry.tensor.numel(),
            });
        }
        self.next += 1;
        Ok(&entry.tensor)
    }

    /// Consumes one `Linear`'s weight `[rows × cols]` and bias `[cols]`.
    fn linear(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
    ) -> Result<FrozenLinear, FreezeError> {
        let w = self.take(format!("{name}.weight"), rows * cols, (rows, cols))?;
        let b = self.take(format!("{name}.bias"), cols, (cols, 0))?;
        Ok(FrozenLinear {
            w: w.reshape((rows, cols)).expect("weight numel checked"),
            b: b.clone(),
        })
    }
}

/// Extracts rows `[start, end)` of a row-major `[rows × cols]` weight as
/// an owned `[(end − start) × cols]` tensor (row blocks are contiguous).
fn row_block(w: &Tensor, cols: usize, start: usize, end: usize) -> Tensor {
    Tensor::from_vec(
        (end - start, cols),
        w.data()[start * cols..end * cols].to_vec(),
    )
    .expect("row block dims")
}

impl FrozenEgnn {
    /// Freezes a live model's current parameters.
    ///
    /// # Panics
    ///
    /// Never panics for a model built by [`Egnn::new`] — its parameter set
    /// matches its config by construction.
    pub fn freeze(model: &Egnn) -> Self {
        Self::from_params(*model.config(), model.params())
            .expect("a constructed Egnn always matches its own config")
    }

    /// Builds the engine from a checkpointed parameter set and the config
    /// describing its architecture (the MGTC format stores parameters
    /// only, so callers supply the config they trained with). Every entry
    /// is validated by name and shape against the architecture before any
    /// weight is accepted.
    pub fn from_params(config: EgnnConfig, params: &ParamSet) -> Result<Self, FreezeError> {
        let h = config.hidden_dim;
        let e = config.edge_feat_dim();
        let mut cur = Cursor { params, next: 0 };

        let embed = cur.linear("embed.0", config.node_feat_dim, h)?;

        let mut layers = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            let phi_e1 = {
                let lin = cur.linear(&format!("layer{l}.phi_e.0"), 2 * h + e, h)?;
                SplitEdgeLinear {
                    w_pair: pair_cols(&row_block(&lin.w, h, 0, h), &row_block(&lin.w, h, h, 2 * h)),
                    w_d: row_block(&lin.w, h, 2 * h, 2 * h + e),
                    b: lin.b,
                }
            };
            let phi_e2 = cur.linear(&format!("layer{l}.phi_e.1"), h, h)?;
            let phi_x = if config.update_coords {
                Some((
                    cur.linear(&format!("layer{l}.phi_x.0"), h, h)?,
                    cur.linear(&format!("layer{l}.phi_x.1"), h, 1)?,
                ))
            } else {
                None
            };
            let phi_h1 = {
                let lin = cur.linear(&format!("layer{l}.phi_h.0"), 2 * h, h)?;
                SplitNodeLinear {
                    w_h: row_block(&lin.w, h, 0, h),
                    w_agg: row_block(&lin.w, h, h, 2 * h),
                    b: lin.b,
                }
            };
            let phi_h2 = cur.linear(&format!("layer{l}.phi_h.1"), h, h)?;
            let gate = if config.edge_gate {
                Some(cur.linear(&format!("layer{l}.gate.0"), h, 1)?)
            } else {
                None
            };
            let norm = if config.layer_norm {
                let gamma = cur.take(format!("layer{l}.norm.gamma"), h, (h, 0))?.clone();
                let beta = cur.take(format!("layer{l}.norm.beta"), h, (h, 0))?.clone();
                Some((gamma, beta))
            } else {
                None
            };
            layers.push(FrozenLayer {
                phi_e1,
                phi_e2,
                phi_x,
                phi_h1,
                phi_h2,
                gate,
                norm,
            });
        }

        let energy1 = cur.linear("energy_head.0", h, h)?;
        let energy2 = cur.linear("energy_head.1", h, 1)?;
        let force1 = {
            let lin = cur.linear("force_head.0", 2 * h + e, h)?;
            SplitEdgeLinear {
                w_pair: pair_cols(&row_block(&lin.w, h, 0, h), &row_block(&lin.w, h, h, 2 * h)),
                w_d: row_block(&lin.w, h, 2 * h, 2 * h + e),
                b: lin.b,
            }
        };
        let force2 = cur.linear("force_head.1", h, 1)?;

        if cur.next != params.len() {
            return Err(FreezeError::TrailingParams {
                extra: params.len() - cur.next,
            });
        }

        let rbf = (config.n_rbf > 0).then(|| {
            let k = config.n_rbf;
            let delta = RBF_RMAX / (k.max(2) - 1) as f32;
            let neg_mu: Vec<f32> = (0..k).map(|i| -(i as f32) * delta).collect();
            RbfConsts {
                neg_mu: Tensor::from_vec(k, neg_mu).expect("centers"),
                gamma: 1.0 / (2.0 * delta * delta),
            }
        });

        Ok(FrozenEgnn {
            config,
            embed,
            layers,
            energy1,
            energy2,
            force1,
            force2,
            rbf,
        })
    }

    /// The architecture this engine was frozen from.
    pub fn config(&self) -> &EgnnConfig {
        &self.config
    }

    /// Runs the forward pass, returning `(energies [n_graphs × 1],
    /// forces [n_nodes × 3])` in the model's (normalized) output units —
    /// the same quantities as the tape forward's two heads.
    ///
    /// Takes `&self`: the engine is immutable and can serve concurrent
    /// callers. With warmed recycler buckets, a steady-state call performs
    /// zero heap allocations (asserted by `exp_serving`).
    pub fn predict(&self, batch: &GraphBatch) -> (Tensor, Tensor) {
        let n = batch.n_nodes();
        let src: &[usize] = batch.src();

        // Embed (single layer, final act SiLU).
        let mut h = self.embed.apply(batch.node_feats());
        h.silu_in_place();

        // Learned coordinate displacement (only with `update_coords`).
        let mut d = self.config.update_coords.then(|| Tensor::zeros((n, 3)));

        // Static geometry: without coordinate updates the rel vectors —
        // and therefore the distance features — are identical in every
        // layer and in the force head, so compute them once. (The tape
        // recomputes them per layer; this is pure saved work.)
        let static_geom = match d {
            None => Some(self.edge_geometry(batch, None)),
            Some(_) => None,
        };

        for layer in &self.layers {
            let layer_geom;
            let (rel, dist_feat) = match &static_geom {
                Some((rel, feat)) => (rel, feat),
                None => {
                    layer_geom = self.edge_geometry(batch, d.as_ref());
                    (&layer_geom.0, &layer_geom.1)
                }
            };
            let mut m = self.edge_mlp(
                batch,
                &h,
                dist_feat,
                &layer.phi_e1,
                &layer.phi_e2,
                Activation::Silu,
            );

            if let Some(gate) = &layer.gate {
                let mut g = gate.apply(&m);
                g.sigmoid_in_place();
                m.mul_col_in_place(&g);
            }

            if let (Some((x1, x2)), Some(d)) = (&layer.phi_x, d.as_mut()) {
                let mut w = x1.apply(&m);
                w.silu_in_place();
                let w = x2.apply(&w); // final act: none
                let weighted = rel.mul_col(&w);
                let mut upd = weighted.scatter_add_rows(src, n);
                upd.mul_col_in_place(batch.inv_src_degree());
                d.axpy(1.0, &upd);
            }

            let agg = m.scatter_add_rows(src, n);
            // φ_h first layer with the [h ‖ agg] concat split away.
            let mut hn = h.matmul(&layer.phi_h1.w_h);
            let t = agg.matmul(&layer.phi_h1.w_agg);
            hn.axpy(1.0, &t);
            hn.add_row_in_place(&layer.phi_h1.b);
            hn.silu_in_place();
            let mut out = layer.phi_h2.apply(&hn); // final act: none
            if self.config.residual {
                out.axpy(1.0, &h);
            }
            h = out;
            if let Some((gamma, beta)) = &layer.norm {
                layer_norm_in_place(&mut h, gamma, beta);
            }
        }

        // Energy head: per-node contributions summed per graph.
        let mut node_e = self.energy1.apply(&h);
        node_e.silu_in_place();
        let node_e = self.energy2.apply(&node_e); // final act: none
        let energy = node_e.scatter_add_rows(batch.node_graph(), batch.n_graphs());

        // Equivariant force head: per-edge scalar times rel vector.
        let head_geom;
        let (rel, dist_feat) = match &static_geom {
            Some((rel, feat)) => (rel, feat),
            None => {
                head_geom = self.edge_geometry(batch, d.as_ref());
                (&head_geom.0, &head_geom.1)
            }
        };
        let w = self.edge_mlp(
            batch,
            &h,
            dist_feat,
            &self.force1,
            &self.force2,
            Activation::None,
        );
        let weighted = rel.mul_col(&w);
        let forces = weighted.scatter_add_rows(src, n);

        (energy, forces)
    }

    /// Current rel vectors and distance features for the edge set:
    /// `(rel [E × 3], dist_feat [E × K or E × 1])`.
    fn edge_geometry(&self, batch: &GraphBatch, d: Option<&Tensor>) -> (Tensor, Tensor) {
        let rel = match d {
            Some(d) => {
                // rel = rel0 + (d_src − d_dst), as on the tape.
                let di = d.gather_rows(batch.src());
                let dj = d.gather_rows(batch.dst());
                let mut rel = di.sub(&dj);
                rel.axpy(1.0, batch.edge_vectors());
                rel
            }
            None => batch.edge_vectors().clone(),
        };
        let mut dist2 = rel.square().sum_axis1();
        let dist_feat = match &self.rbf {
            None => dist2,
            Some(consts) => {
                // ‖r‖ from ‖r‖² (same tiny shift as the tape path).
                dist2.add_scalar_in_place(1e-8);
                dist2.sqrt_in_place();
                rbf_expand(&dist2, consts)
            }
        };
        (rel, dist_feat)
    }

    /// The two-layer edge MLP with concat elimination and
    /// transform-then-gather on the first layer. Returns the MLP output
    /// `[E × out]`.
    fn edge_mlp(
        &self,
        batch: &GraphBatch,
        h: &Tensor,
        dist_feat: &Tensor,
        l1: &SplitEdgeLinear,
        l2: &FrozenLinear,
        final_act: Activation,
    ) -> Tensor {
        let src: &[usize] = batch.src();
        let dst: &[usize] = batch.dst();

        // Transform-then-gather: both node-side partial products from one
        // node-level matmul (~mean-degree× fewer FLOPs than the tape's
        // edge-level concat matmul), then a single fused per-edge pass
        // adding src block + dst block + bias onto the dist-feature
        // product in place.
        let mut m = dist_feat.matmul(&l1.w_d);
        let p = h.matmul(&l1.w_pair); // [n × 2·out]
        {
            let cols = m.cols();
            let pd = p.data();
            let b = l1.b.data();
            let md = m.data_mut();
            for (e, row) in md.chunks_exact_mut(cols).enumerate() {
                let ps = &pd[src[e] * 2 * cols..][..cols];
                let pj = &pd[dst[e] * 2 * cols + cols..][..cols];
                for ((x, (s, j)), bias) in row.iter_mut().zip(ps.iter().zip(pj)).zip(b) {
                    *x += s + j + bias;
                }
            }
        }
        m.silu_in_place(); // hidden activation

        let mut out = l2.apply(&m);
        apply_in_place(final_act, &mut out);
        out
    }
}

/// Gaussian RBF expansion of `‖r‖` (`[E × 1]` → `[E × K]`). The tape path
/// broadcasts via `matmul(dist, ones_row)` — an exact row copy — so
/// building `dist[i] + neg_mu[j]` directly is bit-identical, and the
/// square/scale/exp chain reuses the same elementwise kernels.
fn rbf_expand(dist: &Tensor, consts: &RbfConsts) -> Tensor {
    let k = consts.neg_mu.numel();
    let rows = dist.rows();
    let mut out = Tensor::zeros((rows, k));
    {
        let d = dist.data();
        let mu = consts.neg_mu.data();
        let o = out.data_mut();
        for (i, row) in o.chunks_exact_mut(k).enumerate() {
            let di = d[i];
            for (x, m) in row.iter_mut().zip(mu) {
                *x = di + m;
            }
        }
    }
    out.square_in_place();
    out.scale_in_place(-consts.gamma);
    out.exp_in_place();
    out
}

/// Row-wise layer normalization, mirroring the tape op sequence of
/// [`LayerNorm::forward`] with in-place ops.
fn layer_norm_in_place(h: &mut Tensor, gamma: &Tensor, beta: &Tensor) {
    let inv_m = 1.0 / h.cols() as f32;
    let mut mean = h.sum_axis1();
    mean.scale_in_place(inv_m);
    mean.map_in_place(|x| -x);
    h.add_col_in_place(&mean); // centered
    let mut var = h.square().sum_axis1();
    var.scale_in_place(inv_m);
    var.add_scalar_in_place(LayerNorm::EPS);
    var.sqrt_in_place();
    var.map_in_place(|x| 1.0 / x); // matches the tape's recip
    h.mul_col_in_place(&var);
    h.mul_row_in_place(gamma);
    h.add_row_in_place(beta);
}

/// Applies an activation in place (the tape's `Activation::apply`,
/// without the tape).
fn apply_in_place(act: Activation, t: &mut Tensor) {
    match act {
        Activation::Silu => t.silu_in_place(),
        Activation::Relu => t.relu_in_place(),
        Activation::Tanh => t.map_in_place(f32::tanh),
        Activation::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_graph::{AtomicStructure, Element, MolGraph};
    use matgnn_tensor::{pool, Tape};

    /// A deterministic little batch of two molecules.
    fn test_batch() -> GraphBatch {
        let water = AtomicStructure::new(
            vec![Element::O, Element::H, Element::H],
            vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
        )
        .unwrap();
        let methane = AtomicStructure::new(
            vec![Element::C, Element::H, Element::H, Element::H, Element::H],
            vec![
                [0.0, 0.0, 0.0],
                [0.63, 0.63, 0.63],
                [-0.63, -0.63, 0.63],
                [-0.63, 0.63, -0.63],
                [0.63, -0.63, -0.63],
            ],
        )
        .unwrap();
        let g1 = MolGraph::from_structure(&water, 2.0);
        let g2 = MolGraph::from_structure(&methane, 2.0);
        GraphBatch::from_graphs(&[&g1, &g2])
    }

    fn tape_forward(model: &Egnn, batch: &GraphBatch) -> (Tensor, Tensor) {
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, batch);
        (
            tape.value(out.energy).clone(),
            tape.value(out.forces).clone(),
        )
    }

    fn assert_close(tag: &str, a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape(), "{tag}: shape mismatch");
        let scale = a.max_abs().max(b.max_abs()).max(1.0);
        let diff = a.sub(b).max_abs();
        assert!(
            diff <= tol * scale,
            "{tag}: max diff {diff:e} vs scale {scale:e}"
        );
    }

    fn check_config(config: EgnnConfig, tol: f32) {
        let model = Egnn::new(config);
        let batch = test_batch();
        let (te, tf) = tape_forward(&model, &batch);
        let frozen = FrozenEgnn::freeze(&model);
        let (fe, ff) = frozen.predict(&batch);
        assert_close("energy", &te, &fe, tol);
        assert_close("forces", &tf, &ff, tol);
    }

    #[test]
    fn frozen_matches_tape_default_config() {
        check_config(EgnnConfig::new(16, 3), 1e-4);
    }

    #[test]
    fn frozen_matches_tape_all_features_on() {
        check_config(
            EgnnConfig::new(12, 2)
                .with_edge_gate(true)
                .with_layer_norm(true)
                .with_rbf(8)
                .with_seed(5),
            1e-4,
        );
    }

    #[test]
    fn frozen_matches_tape_minimal_features() {
        check_config(
            EgnnConfig::new(8, 2)
                .with_update_coords(false)
                .with_residual(false)
                .with_rbf(0)
                .with_seed(9),
            1e-4,
        );
    }

    /// The frozen forward keeps the kernel contract: bitwise-identical
    /// output for any pool size (within a SIMD tier).
    #[test]
    fn frozen_forward_pool_size_invariant() {
        let model = Egnn::new(EgnnConfig::new(16, 3).with_rbf(8));
        let frozen = FrozenEgnn::freeze(&model);
        let batch = test_batch();
        pool::set_thread_override(1);
        let (e1, f1) = frozen.predict(&batch);
        pool::set_thread_override(4);
        let (e4, f4) = frozen.predict(&batch);
        pool::set_thread_override(0);
        assert_eq!(e1, e4, "energy not pool-size invariant");
        assert_eq!(f1, f4, "forces not pool-size invariant");
    }

    /// Repeated predictions from one engine are bitwise identical
    /// (immutability: no hidden state drifts between requests).
    #[test]
    fn frozen_forward_is_deterministic_across_calls() {
        let model = Egnn::new(EgnnConfig::new(16, 2));
        let frozen = FrozenEgnn::freeze(&model);
        let batch = test_batch();
        let (e1, f1) = frozen.predict(&batch);
        for _ in 0..3 {
            let (e, f) = frozen.predict(&batch);
            assert_eq!(e1, e);
            assert_eq!(f1, f);
        }
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let model = Egnn::new(EgnnConfig::new(16, 3));
        // Wrong depth: the layer-2 parameters are missing.
        let err = FrozenEgnn::from_params(EgnnConfig::new(16, 4), model.params());
        assert!(err.is_err(), "depth mismatch accepted");
        // Wrong width: first weight has the wrong shape.
        let err = FrozenEgnn::from_params(EgnnConfig::new(24, 3), model.params());
        assert!(err.is_err(), "width mismatch accepted");
        // Extra features change parameter names.
        let err =
            FrozenEgnn::from_params(EgnnConfig::new(16, 3).with_layer_norm(true), model.params());
        assert!(err.is_err(), "feature mismatch accepted");
    }
}
