//! Graph-parallel EGNN execution over a spatial [`PartitionPlan`].
//!
//! One structure is split into `V` **virtual parts** (fixed per run,
//! independent of the rank count); a rank executes a contiguous run of
//! parts, layer by layer, refreshing each part's ghost halo between
//! layers through a [`HaloChannel`]. The channel is the only
//! communication abstraction the engine sees: `matgnn_dist` implements
//! it over the real collective runtime, while [`LocalHalo`] runs all
//! parts in-process (the single-rank path, and the reference every
//! multi-rank run must match bitwise).
//!
//! # Why the trajectory is invariant to the rank count
//!
//! Every tape in this module is **per part**: its graph, leaf bindings,
//! and seeds depend only on the plan, never on which rank runs it. The
//! only cross-part arithmetic is (a) ghost-value copies (exact), (b)
//! ghost-adjoint accumulation, (c) the energy reduction, and (d) the
//! parameter-gradient reduction — and all of (b)–(d) are performed in
//! **canonical ascending part order** on every rank, with the same
//! per-row f32 additions a single rank would issue. Forward node values
//! are additionally bitwise identical to the plain single-tape
//! [`Egnn`]: every kernel is row-wise with a fixed per-row accumulation
//! order, and a part's local edge list preserves the global edge order
//! restricted to its owned sources (see DESIGN.md §7.9).

use matgnn_graph::{GraphBatch, PartitionPlan};
use matgnn_tensor::{Tape, Tensor, Var};

use crate::{Egnn, GnnModel};

/// A halo-exchange failure (in the distributed channel: a poisoned or
/// timed-out communicator). The engine aborts the step and surfaces the
/// error so the driver can run elastic recovery.
#[derive(Debug, Clone)]
pub struct HaloError(pub String);

impl std::fmt::Display for HaloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "halo exchange failed: {}", self.0)
    }
}

impl std::error::Error for HaloError {}

/// The communication surface of graph-parallel execution. Implementors
/// move **owned row blocks** between parts; all methods are collective
/// across ranks (every rank calls them the same number of times per
/// step, in the same order).
pub trait HaloChannel {
    /// The contiguous run of parts this channel executes.
    fn part_range(&self, plan: &PartitionPlan) -> (usize, usize);

    /// Pushes each local part's owned rows to the parts that ghost
    /// them; returns, for each local part, its ghost rows (ghost-id
    /// ascending) as copied from the owners. `owned[i]` belongs to part
    /// `part_range().0 + i` and has that part's `n_owned()` rows.
    fn exchange_ghosts(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError>;

    /// Routes ghost adjoints back to their owners. Returns, per local
    /// part `p`, the accumulated gradient for `p`'s owned rows: the sum
    /// over **all contributing parts in ascending part order** (each
    /// part contributes at its own index — `p`'s own block included) of
    /// that part's gradient rows for those atoms. `own[i]` is local
    /// part `i`'s gradient for its owned rows, `ghost[i]` for its ghost
    /// rows (ghost-id ascending).
    fn accumulate_adjoints(
        &mut self,
        plan: &PartitionPlan,
        own: &[Tensor],
        ghost: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError>;

    /// Concatenates per-part owned row blocks over **all** parts in
    /// ascending part order — which, because parts own contiguous
    /// ascending id ranges, is exactly the global `[n × cols]` matrix.
    fn gather_rows(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Tensor, HaloError>;

    /// Canonical cross-part reduction of per-part flat vectors: returns
    /// `Σ_p contribution_p` summed in ascending part order, identically
    /// on every rank. `per_part[i]` is local part `i`'s contribution;
    /// each has length `len` (passed explicitly so ranks that own no
    /// parts — possible when `world` does not divide `n_parts` — still
    /// receive the full reduction).
    fn reduce_parts(
        &mut self,
        plan: &PartitionPlan,
        per_part: &[Vec<f32>],
        len: usize,
    ) -> Result<Vec<f32>, HaloError>;
}

/// The in-process channel: one "rank" executes every part. This is both
/// the single-rank production path and the parity reference — the
/// distributed channel must reproduce its arithmetic bit for bit, which
/// is why the accumulation loops below are written in the exact
/// ascending-part order the distributed implementation mirrors.
#[derive(Debug, Default)]
pub struct LocalHalo;

impl LocalHalo {
    /// Creates the all-parts-local channel.
    pub fn new() -> Self {
        LocalHalo
    }
}

impl HaloChannel for LocalHalo {
    fn part_range(&self, plan: &PartitionPlan) -> (usize, usize) {
        (0, plan.n_parts())
    }

    fn exchange_ghosts(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError> {
        assert_eq!(owned.len(), plan.n_parts());
        let mut out = Vec::with_capacity(owned.len());
        for part in plan.parts() {
            let mut data = Vec::with_capacity(part.ghosts().len() * cols);
            for &g in part.ghosts() {
                let q = plan.owner_part(g);
                let (qs, _) = plan.part(q).owned_range();
                let row = &owned[q].data()[(g - qs) * cols..(g - qs + 1) * cols];
                data.extend_from_slice(row);
            }
            out.push(tensor_rows(data, part.ghosts().len(), cols));
        }
        Ok(out)
    }

    fn accumulate_adjoints(
        &mut self,
        plan: &PartitionPlan,
        own: &[Tensor],
        ghost: &[Tensor],
        cols: usize,
    ) -> Result<Vec<Tensor>, HaloError> {
        let v = plan.n_parts();
        assert_eq!(own.len(), v);
        assert_eq!(ghost.len(), v);
        let mut out = Vec::with_capacity(v);
        for (p, own_p) in own.iter().enumerate() {
            let part = plan.part(p);
            let (s, e) = part.owned_range();
            let mut acc = vec![0.0f32; part.n_owned() * cols];
            // Ascending contributor order, own block at its own index —
            // the canonical order every world size reproduces.
            for (q, ghost_q) in ghost.iter().enumerate() {
                if q == p {
                    add_into(&mut acc, own_p.data());
                } else {
                    add_ghost_rows(&mut acc, plan, q, ghost_q.data(), s, e, cols);
                }
            }
            out.push(tensor_rows(acc, part.n_owned(), cols));
        }
        Ok(out)
    }

    fn gather_rows(
        &mut self,
        plan: &PartitionPlan,
        owned: &[Tensor],
        cols: usize,
    ) -> Result<Tensor, HaloError> {
        let mut data = Vec::with_capacity(plan.n_nodes() * cols);
        for block in owned {
            data.extend_from_slice(block.data());
        }
        Ok(tensor_rows(data, plan.n_nodes(), cols))
    }

    fn reduce_parts(
        &mut self,
        plan: &PartitionPlan,
        per_part: &[Vec<f32>],
        len: usize,
    ) -> Result<Vec<f32>, HaloError> {
        assert_eq!(per_part.len(), plan.n_parts());
        let mut acc = vec![0.0f32; len];
        for contribution in per_part {
            add_into(&mut acc, contribution);
        }
        Ok(acc)
    }
}

/// `acc[i] += x[i]`, sequentially — the element order every channel
/// implementation must use so accumulations stay bitwise identical.
pub fn add_into(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len());
    for (a, &b) in acc.iter_mut().zip(x) {
        *a += b;
    }
}

/// Adds contributor part `q`'s ghost-gradient rows that fall inside the
/// owner range `[s, e)` onto `acc` (the owner's `[n_owned × cols]`
/// block). `ghost_data` is `q`'s ghost block, ghost-id ascending.
pub fn add_ghost_rows(
    acc: &mut [f32],
    plan: &PartitionPlan,
    q: usize,
    ghost_data: &[f32],
    s: usize,
    e: usize,
    cols: usize,
) {
    for (gi, &g) in plan.part(q).ghosts().iter().enumerate() {
        if g >= s && g < e {
            let dst = &mut acc[(g - s) * cols..(g - s + 1) * cols];
            let src = &ghost_data[gi * cols..(gi + 1) * cols];
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
    }
}

/// Builds a `[rows × cols]` tensor from a flat row-major vector (also
/// valid for zero rows — empty halos are common on interior parts).
fn tensor_rows(data: Vec<f32>, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec((rows, cols), data).expect("row block shape")
}

/// Copies rows `[r0, r1)` of `t` into a fresh tensor.
fn rows_of(t: &Tensor, r0: usize, r1: usize) -> Tensor {
    let c = t.cols();
    tensor_rows(t.data()[r0 * c..r1 * c].to_vec(), r1 - r0, c)
}

/// Concatenates an owned block with a ghost block (owned rows first).
fn stitch(owned: &Tensor, ghosts: &Tensor) -> Tensor {
    let c = owned.cols();
    let mut data = Vec::with_capacity((owned.rows() + ghosts.rows()) * c);
    data.extend_from_slice(owned.data());
    data.extend_from_slice(ghosts.data());
    tensor_rows(data, owned.rows() + ghosts.rows(), c)
}

/// The energy/force objective of a graph-parallel step:
/// `w_e (E − y)² + w_f ‖F‖² / (3n)`. Its per-row adjoints are pure
/// functions of the (replicated) global outputs, so gradient seeds are
/// bitwise identical on every rank.
#[derive(Debug, Clone, Copy)]
pub struct GraphParLoss {
    /// Target total energy `y`.
    pub energy_target: f32,
    /// Energy term weight `w_e`.
    pub energy_weight: f32,
    /// Force regularization weight `w_f`.
    pub force_weight: f32,
}

impl Default for GraphParLoss {
    fn default() -> Self {
        GraphParLoss {
            energy_target: 0.0,
            energy_weight: 1.0,
            force_weight: 1.0,
        }
    }
}

/// Everything a graph-parallel forward/backward produces. `energy`,
/// `forces`, `loss`, and `grads` are **replicated**: every rank returns
/// the same bits.
#[derive(Debug)]
pub struct GraphParOutput {
    /// Total energy of the structure.
    pub energy: f32,
    /// Per-atom forces `[n × 3]` in global (renumbered) atom order.
    pub forces: Tensor,
    /// Scalar loss.
    pub loss: f32,
    /// Parameter gradients aligned with the model's `ParamSet`,
    /// canonically summed over parts.
    pub grads: Vec<Tensor>,
    /// Atoms owned by this rank's parts.
    pub owned_atoms: usize,
    /// Ghost atoms replicated into this rank's halos.
    pub ghost_atoms: usize,
    /// Logical halo payload this step (ghost rows × columns × 4 bytes,
    /// summed over every exchange, including same-rank part copies).
    pub halo_bytes: u64,
}

/// Builds the partition-local batches for parts `[p0, p1)` — one
/// [`GraphBatch`] per part, owned nodes first, then ghosts. Build these
/// once per plan and reuse them across steps.
pub fn local_batches(plan: &PartitionPlan, p0: usize, p1: usize) -> Vec<GraphBatch> {
    (p0..p1)
        .map(|p| GraphBatch::from_graphs(&[plan.part(p).graph()]))
        .collect()
}

/// One graph-parallel forward + backward over this rank's parts.
///
/// `batches` must be [`local_batches`]`(plan, p0, p1)` for the
/// channel's part range. Forward runs embed + every layer per part with
/// a ghost refresh between layers; backward recomputes each segment on
/// a fresh tape (activation-checkpointing style), seeds it with the
/// downstream adjoints, and drains parameter gradients through the
/// tape's leaf-sink path while ghost adjoints flow back to their owners
/// through the channel.
///
/// # Panics
///
/// Panics if `batches` disagrees with the channel's part range.
pub fn graphpar_step(
    model: &Egnn,
    plan: &PartitionPlan,
    batches: &[GraphBatch],
    channel: &mut dyn HaloChannel,
    loss_cfg: &GraphParLoss,
) -> Result<GraphParOutput, HaloError> {
    let (p0, p1) = channel.part_range(plan);
    let k = p1 - p0;
    assert_eq!(batches.len(), k, "one local batch per local part");
    let n = plan.n_nodes();
    let hidden = model.config().hidden_dim;
    let n_seg = model.n_segments();
    let n_layers = n_seg - 2;
    let update_coords = model.config().update_coords;
    let params = model.params();
    let n_owned: Vec<usize> = (p0..p1).map(|p| plan.part(p).n_owned()).collect();
    let mut halo_bytes: u64 = 0;

    // ---- Forward ----------------------------------------------------
    // boundaries[s][i] = (h, d) entering segment s+1 for local part i,
    // ghost rows refreshed. Embed needs no exchange: ghost h is the
    // same per-row MLP of the same feature rows the owner computes, and
    // d is identically zero.
    let mut boundaries: Vec<Vec<(Tensor, Tensor)>> = Vec::with_capacity(n_layers + 1);
    let mut state: Vec<(Tensor, Tensor)> = Vec::with_capacity(k);
    for (i, batch) in batches.iter().enumerate() {
        let _ = i;
        let mut tape = Tape::new();
        let pvars = bind_frozen_range(model, &mut tape, 0);
        let out = model.segment_forward(&mut tape, 0, &pvars, batch, &[]);
        state.push((tape.value(out[0]).clone(), tape.value(out[1]).clone()));
    }
    boundaries.push(state);

    for li in 0..n_layers {
        let seg = li + 1;
        let prev = &boundaries[li];
        let mut next: Vec<(Tensor, Tensor)> = Vec::with_capacity(k);
        for (i, batch) in batches.iter().enumerate() {
            let mut tape = Tape::new();
            let pvars = bind_frozen_range(model, &mut tape, seg);
            let sv = [
                tape.constant(prev[i].0.clone()),
                tape.constant(prev[i].1.clone()),
                tape.constant(batch.edge_vectors().clone()),
            ];
            let out = model.segment_forward(&mut tape, seg, &pvars, batch, &sv);
            next.push((tape.value(out[0]).clone(), tape.value(out[1]).clone()));
        }
        // Refresh halos: ghost rows of the layer output are stale (a
        // part has none of a ghost's edges), so overwrite them with the
        // owners' freshly computed rows.
        let owned_h: Vec<Tensor> = next
            .iter()
            .zip(&n_owned)
            .map(|((h, _), &no)| rows_of(h, 0, no))
            .collect();
        let ghost_h = channel.exchange_ghosts(plan, &owned_h, hidden)?;
        halo_bytes += ghost_bytes(&ghost_h);
        let stitched: Vec<(Tensor, Tensor)> = if update_coords {
            let owned_d: Vec<Tensor> = next
                .iter()
                .zip(&n_owned)
                .map(|((_, d), &no)| rows_of(d, 0, no))
                .collect();
            let ghost_d = channel.exchange_ghosts(plan, &owned_d, 3)?;
            halo_bytes += ghost_bytes(&ghost_d);
            owned_h
                .iter()
                .zip(&ghost_h)
                .zip(owned_d.iter().zip(&ghost_d))
                .map(|((oh, gh), (od, gd))| (stitch(oh, gh), stitch(od, gd)))
                .collect()
        } else {
            owned_h
                .iter()
                .zip(&ghost_h)
                .zip(&boundaries[li])
                .map(|((oh, gh), (_, d))| (stitch(oh, gh), d.clone()))
                .collect()
        };
        boundaries.push(stitched);
    }

    // ---- Heads ------------------------------------------------------
    let last = &boundaries[n_layers];
    let mut node_e_local: Vec<Tensor> = Vec::with_capacity(k);
    let mut force_local: Vec<Tensor> = Vec::with_capacity(k);
    for (i, batch) in batches.iter().enumerate() {
        let mut tape = Tape::new();
        let pvars = bind_frozen_range(model, &mut tape, n_seg - 1);
        let h = tape.constant(last[i].0.clone());
        let d = tape.constant(last[i].1.clone());
        let rel0 = tape.constant(batch.edge_vectors().clone());
        let (node_e, forces) = model.head_forward_nodes(&mut tape, &pvars, batch, h, d, rel0);
        node_e_local.push(tape.value(node_e).clone());
        force_local.push(tape.value(forces).clone());
    }
    let owned_e: Vec<Tensor> = node_e_local
        .iter()
        .zip(&n_owned)
        .map(|(t, &no)| rows_of(t, 0, no))
        .collect();
    let owned_f: Vec<Tensor> = force_local
        .iter()
        .zip(&n_owned)
        .map(|(t, &no)| rows_of(t, 0, no))
        .collect();
    let full_e = channel.gather_rows(plan, &owned_e, 1)?;
    let full_f = channel.gather_rows(plan, &owned_f, 3)?;
    // Reduce node energies with the same scatter kernel — and therefore
    // the same global-node-order accumulation — the single-tape model
    // uses for its per-graph energy sum.
    let node_graph: Vec<usize> = vec![0; n];
    let energy = full_e.scatter_add_rows(&node_graph, 1).item();

    // ---- Loss and adjoint seeds (replicated arithmetic) -------------
    let de = energy - loss_cfg.energy_target;
    let n3 = (3 * n) as f32;
    let loss = loss_cfg.energy_weight * de * de + loss_cfg.force_weight * full_f.norm_sq() / n3;
    let g_e = 2.0 * loss_cfg.energy_weight * de;
    let g_f = 2.0 * loss_cfg.force_weight / n3;

    // ---- Backward ---------------------------------------------------
    let n_params = params.len();
    let offsets: Vec<usize> = {
        let mut o = Vec::with_capacity(n_params + 1);
        let mut acc = 0;
        o.push(0);
        for e in params.iter() {
            acc += e.tensor.numel();
            o.push(acc);
        }
        o
    };
    let flat_len = offsets[n_params];
    let mut part_grads: Vec<Vec<f32>> = (0..k).map(|_| vec![0.0f32; flat_len]).collect();

    // Heads segment.
    let (hstart, hend) = model.segment_param_range(n_seg - 1);
    let mut own_h: Vec<Tensor> = Vec::with_capacity(k);
    let mut ghost_h: Vec<Tensor> = Vec::with_capacity(k);
    let mut own_d: Vec<Tensor> = Vec::with_capacity(k);
    let mut ghost_d: Vec<Tensor> = Vec::with_capacity(k);
    for (i, batch) in batches.iter().enumerate() {
        let part = plan.part(p0 + i);
        let (ps, _) = part.owned_range();
        let no = n_owned[i];
        let n_local = part.n_local();
        let mut tape = Tape::new();
        let pvars = params.bind_range(&mut tape, hstart, hend);
        let h = tape.param(last[i].0.clone());
        let d = tape.param(last[i].1.clone());
        let rel0 = tape.constant(batch.edge_vectors().clone());
        let (node_e, forces) = model.head_forward_nodes(&mut tape, &pvars, batch, h, d, rel0);
        // Seeds: owned rows carry the loss adjoint, ghost rows zero
        // (their real rows are differentiated by their owner part).
        let mut seed_e = vec![0.0f32; n_local];
        seed_e[..no].fill(g_e);
        let mut seed_f = vec![0.0f32; n_local * 3];
        for r in 0..no {
            for c in 0..3 {
                seed_f[r * 3 + c] = g_f * full_f.get(ps + r, c);
            }
        }
        let seeds = [
            (node_e, tensor_rows(seed_e, n_local, 1)),
            (forces, tensor_rows(seed_f, n_local, 3)),
        ];
        let mut leaves: Vec<Var> = pvars.clone();
        leaves.push(h);
        leaves.push(d);
        let np = pvars.len();
        let mut hg: Option<Tensor> = None;
        let mut dg: Option<Tensor> = None;
        {
            let flat = &mut part_grads[i];
            let mut sink = |j: usize, g: Tensor| {
                if j < np {
                    flat[offsets[hstart + j]..offsets[hstart + j + 1]].copy_from_slice(g.data());
                } else if j == np {
                    hg = Some(g);
                } else {
                    dg = Some(g);
                }
            };
            let _ = tape.backward_seeded_with_leaf_sink(&seeds, &leaves, &mut sink);
        }
        let hg = hg.expect("h leaf emitted");
        let dg = dg.expect("d leaf emitted");
        own_h.push(rows_of(&hg, 0, no));
        ghost_h.push(rows_of(&hg, no, n_local));
        own_d.push(rows_of(&dg, 0, no));
        ghost_d.push(rows_of(&dg, no, n_local));
    }
    let mut h_seed = channel.accumulate_adjoints(plan, &own_h, &ghost_h, hidden)?;
    let mut d_seed = channel.accumulate_adjoints(plan, &own_d, &ghost_d, 3)?;

    // Layer segments, deepest first.
    for li in (0..n_layers).rev() {
        let seg = li + 1;
        let (sstart, send) = model.segment_param_range(seg);
        let prev = &boundaries[li];
        let mut own_h2: Vec<Tensor> = Vec::with_capacity(k);
        let mut ghost_h2: Vec<Tensor> = Vec::with_capacity(k);
        let mut own_d2: Vec<Tensor> = Vec::with_capacity(k);
        let mut ghost_d2: Vec<Tensor> = Vec::with_capacity(k);
        for (i, batch) in batches.iter().enumerate() {
            let part = plan.part(p0 + i);
            let no = n_owned[i];
            let n_local = part.n_local();
            let mut tape = Tape::new();
            let pvars = params.bind_range(&mut tape, sstart, send);
            let h = tape.param(prev[i].0.clone());
            let d = tape.param(prev[i].1.clone());
            let rel0 = tape.constant(batch.edge_vectors().clone());
            let out = model.segment_forward(&mut tape, seg, &pvars, batch, &[h, d, rel0]);
            let seeds = [
                (
                    out[0],
                    stitch(&h_seed[i], &Tensor::zeros((n_local - no, hidden))),
                ),
                (
                    out[1],
                    stitch(&d_seed[i], &Tensor::zeros((n_local - no, 3))),
                ),
            ];
            let mut leaves: Vec<Var> = pvars.clone();
            leaves.push(h);
            leaves.push(d);
            let np = pvars.len();
            let mut hg: Option<Tensor> = None;
            let mut dg: Option<Tensor> = None;
            {
                let flat = &mut part_grads[i];
                let mut sink = |j: usize, g: Tensor| {
                    if j < np {
                        flat[offsets[sstart + j]..offsets[sstart + j + 1]]
                            .copy_from_slice(g.data());
                    } else if j == np {
                        hg = Some(g);
                    } else {
                        dg = Some(g);
                    }
                };
                let _ = tape.backward_seeded_with_leaf_sink(&seeds, &leaves, &mut sink);
            }
            let hg = hg.expect("h leaf emitted");
            let dg = dg.expect("d leaf emitted");
            own_h2.push(rows_of(&hg, 0, no));
            ghost_h2.push(rows_of(&hg, no, n_local));
            own_d2.push(rows_of(&dg, 0, no));
            ghost_d2.push(rows_of(&dg, no, n_local));
        }
        h_seed = channel.accumulate_adjoints(plan, &own_h2, &ghost_h2, hidden)?;
        d_seed = channel.accumulate_adjoints(plan, &own_d2, &ghost_d2, 3)?;
    }

    // Embed segment: seed h only (the zero displacement entering layer
    // 0 is a constant, so its adjoint has nowhere to flow).
    let (estart, eend) = model.segment_param_range(0);
    for (i, batch) in batches.iter().enumerate() {
        let part = plan.part(p0 + i);
        let no = n_owned[i];
        let n_local = part.n_local();
        let mut tape = Tape::new();
        let pvars = params.bind_range(&mut tape, estart, eend);
        let out = model.segment_forward(&mut tape, 0, &pvars, batch, &[]);
        let seeds = [(
            out[0],
            stitch(&h_seed[i], &Tensor::zeros((n_local - no, hidden))),
        )];
        let flat = &mut part_grads[i];
        let mut sink = |j: usize, g: Tensor| {
            flat[offsets[estart + j]..offsets[estart + j + 1]].copy_from_slice(g.data());
        };
        let _ = tape.backward_seeded_with_leaf_sink(&seeds, &pvars, &mut sink);
    }

    // Canonical cross-part parameter reduction: ascending part order,
    // identical on every rank (never group partial sums per rank — that
    // would make the bits depend on the world size).
    let flat = channel.reduce_parts(plan, &part_grads, flat_len)?;
    let grads: Vec<Tensor> = params
        .iter()
        .enumerate()
        .map(|(i, e)| {
            Tensor::from_vec(
                e.tensor.shape().clone(),
                flat[offsets[i]..offsets[i + 1]].to_vec(),
            )
            .expect("grad shape")
        })
        .collect();

    let owned_atoms: usize = n_owned.iter().sum();
    let ghost_atoms: usize = (p0..p1).map(|p| plan.part(p).ghosts().len()).sum();
    Ok(GraphParOutput {
        energy,
        forces: full_f,
        loss,
        grads,
        owned_atoms,
        ghost_atoms,
        halo_bytes,
    })
}

fn ghost_bytes(blocks: &[Tensor]) -> u64 {
    blocks.iter().map(|t| t.bytes() as u64).sum()
}

/// Binds segment `seg`'s parameters as constants (forward-only tapes).
fn bind_frozen_range(model: &Egnn, tape: &mut Tape, seg: usize) -> Vec<Var> {
    let (start, end) = model.segment_param_range(seg);
    (start..end)
        .map(|i| tape.constant(model.params().tensor(i).clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EgnnConfig;
    use matgnn_graph::{AtomicStructure, Element, MolGraph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn slab_structure(n: usize, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i / 4) as f64 * 1.1 + rng.gen_range(-0.25..0.25),
                    ((i % 4) / 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                    (i % 2) as f64 * 1.2 + rng.gen_range(-0.25..0.25),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    fn plain_reference(model: &Egnn, plan: &PartitionPlan) -> (Tensor, Tensor) {
        let graph = MolGraph::from_structure(plan.structure(), plan.cutoff());
        let batch = GraphBatch::from_graphs(&[&graph]);
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, &batch);
        (
            tape.value(out.energy).clone(),
            tape.value(out.forces).clone(),
        )
    }

    fn run_graphpar(model: &Egnn, plan: &PartitionPlan) -> GraphParOutput {
        let mut channel = LocalHalo::new();
        let batches = local_batches(plan, 0, plan.n_parts());
        graphpar_step(
            model,
            plan,
            &batches,
            &mut channel,
            &GraphParLoss::default(),
        )
        .unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn forward_is_bitwise_identical_to_plain_egnn() {
        let s = slab_structure(36, 21);
        let model = Egnn::new(EgnnConfig::new(16, 3).with_seed(4));
        for n_parts in [1, 2, 4] {
            let plan = PartitionPlan::build(&s, 2.5, n_parts);
            let (e_ref, f_ref) = plain_reference(&model, &plan);
            let out = run_graphpar(&model, &plan);
            assert_eq!(
                out.energy.to_bits(),
                e_ref.item().to_bits(),
                "energy diverged at V={n_parts}"
            );
            assert_eq!(
                bits(&out.forces),
                bits(&f_ref),
                "forces diverged at V={n_parts}"
            );
        }
    }

    #[test]
    fn forward_parity_holds_with_rbf_gate_and_norm() {
        let s = slab_structure(28, 23);
        let model = Egnn::new(
            EgnnConfig::new(12, 2)
                .with_rbf(6)
                .with_edge_gate(true)
                .with_layer_norm(true)
                .with_seed(9),
        );
        let plan = PartitionPlan::build(&s, 2.5, 3);
        let (e_ref, f_ref) = plain_reference(&model, &plan);
        let out = run_graphpar(&model, &plan);
        assert_eq!(out.energy.to_bits(), e_ref.item().to_bits());
        assert_eq!(bits(&out.forces), bits(&f_ref));
    }

    #[test]
    fn grads_match_single_tape_reference() {
        let s = slab_structure(24, 25);
        let model = Egnn::new(EgnnConfig::new(12, 2).with_seed(6));
        let plan = PartitionPlan::build(&s, 2.5, 3);
        let cfg = GraphParLoss::default();
        let out = run_graphpar(&model, &plan);

        // Same objective on one plain tape.
        let graph = MolGraph::from_structure(plan.structure(), plan.cutoff());
        let batch = GraphBatch::from_graphs(&[&graph]);
        let mut tape = Tape::new();
        let (pvars, mo) = model.bind_and_forward(&mut tape, &batch);
        let n3 = (3 * batch.n_nodes()) as f32;
        let de = tape.add_scalar(mo.energy, -cfg.energy_target);
        let esq = tape.square(de);
        let escaled = tape.scale(esq, cfg.energy_weight);
        let eterm = tape.sum_all(escaled);
        let fsq = tape.square(mo.forces);
        let fsum = tape.sum_all(fsq);
        let fterm = tape.scale(fsum, cfg.force_weight / n3);
        let total = tape.add(eterm, fterm);
        let ref_loss = tape.value(total).item();
        let mut grads = tape.backward(total);

        assert!(
            (out.loss - ref_loss).abs() <= 1e-5 * (1.0 + ref_loss.abs()),
            "{} vs {ref_loss}",
            out.loss
        );
        for (i, &v) in pvars.iter().enumerate() {
            let want = grads
                .take(v)
                .unwrap_or_else(|| Tensor::zeros(model.params().tensor(i).shape().clone()));
            let tol = 1e-4 * (1.0 + want.max_abs());
            assert!(
                out.grads[i].allclose(&want, tol),
                "param {i} ({}) diverged",
                model.params().entry(i).name
            );
        }
    }

    #[test]
    fn single_part_equals_multi_part_loss_only_in_forward() {
        // Sanity: the engine is deterministic — two identical runs agree
        // bit for bit, including gradients.
        let s = slab_structure(24, 29);
        let model = Egnn::new(EgnnConfig::new(10, 2).with_seed(3));
        let plan = PartitionPlan::build(&s, 2.5, 4);
        let a = run_graphpar(&model, &plan);
        let b = run_graphpar(&model, &plan);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        for (x, y) in a.grads.iter().zip(&b.grads) {
            assert_eq!(bits(x), bits(y));
        }
    }

    #[test]
    fn gradcheck_through_halo_exchange() {
        // Central finite differences through the full partitioned
        // pipeline (V=2, so every layer crosses the halo) against the
        // engine's analytic gradients.
        let s = slab_structure(16, 31);
        let mut model = Egnn::new(EgnnConfig::new(8, 2).with_seed(8));
        let plan = PartitionPlan::build(&s, 2.5, 2);
        let cfg = GraphParLoss::default();
        let batches = local_batches(&plan, 0, 2);
        let base = {
            let mut ch = LocalHalo::new();
            graphpar_step(&model, &plan, &batches, &mut ch, &cfg).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(77);
        let n_params = model.params().len();
        for _ in 0..6 {
            let pi = rng.gen_range(0..n_params);
            let numel = model.params().tensor(pi).numel();
            let ei = rng.gen_range(0..numel);
            let orig = model.params().tensor(pi).data()[ei];
            let eps = 1e-2 * (1.0 + orig.abs());
            let mut loss_at = |v: f32| {
                model.params_mut().tensor_mut(pi).data_mut()[ei] = v;
                let mut ch = LocalHalo::new();
                let out = graphpar_step(&model, &plan, &batches, &mut ch, &cfg).unwrap();
                out.loss as f64
            };
            let lp = loss_at(orig + eps);
            let lm = loss_at(orig - eps);
            model.params_mut().tensor_mut(pi).data_mut()[ei] = orig;
            let fd = (lp - lm) / (2.0 * eps as f64);
            let analytic = base.grads[pi].data()[ei] as f64;
            let tol = 2e-2 * (1.0 + fd.abs().max(analytic.abs()));
            assert!(
                (fd - analytic).abs() <= tol,
                "param {pi}[{ei}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn output_accounts_for_halo_traffic() {
        let s = slab_structure(32, 35);
        let model = Egnn::new(EgnnConfig::new(8, 2).with_seed(2));
        let plan = PartitionPlan::build(&s, 2.5, 4);
        let out = run_graphpar(&model, &plan);
        assert_eq!(out.owned_atoms, 32);
        assert_eq!(out.ghost_atoms, plan.total_ghosts());
        assert!(out.ghost_atoms > 0);
        // h (+ d when coordinates update) per layer, 4 bytes per float.
        let per_layer = (8 + 3) * 4 * out.ghost_atoms as u64;
        assert_eq!(out.halo_bytes, 2 * per_layer);
    }
}
