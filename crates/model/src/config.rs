//! Model configuration and exact parameter counting.
//!
//! The scaling experiments (paper Figs. 3–5) sweep model *size*; the
//! sweep code asks "what width gives ~N parameters at depth L?", which
//! [`EgnnConfig::with_target_params`] answers by closed-form counting plus
//! search — no tensors are allocated.

use serde::{Deserialize, Serialize};

use matgnn_graph::NODE_FEAT_DIM;

use crate::mlp::Mlp;

/// Hyperparameters of an EGNN model.
///
/// # Examples
///
/// ```
/// use matgnn_model::EgnnConfig;
///
/// let cfg = EgnnConfig::new(32, 3);
/// assert_eq!(cfg.hidden_dim, 32);
/// assert!(cfg.param_count() > 0);
///
/// // Pick a width that hits ~100k parameters at depth 3.
/// let big = EgnnConfig::with_target_params(100_000, 3);
/// let count = big.param_count() as f64;
/// assert!((count / 100_000.0 - 1.0).abs() < 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EgnnConfig {
    /// Input node feature width (defaults to the graph crate's
    /// featurization width).
    pub node_feat_dim: usize,
    /// Hidden feature width of every φ network.
    pub hidden_dim: usize,
    /// Number of message-passing layers.
    pub n_layers: usize,
    /// Whether the feature update is residual (`h' = h + φ_h(…)`).
    ///
    /// The paper's depth experiment (Fig. 5) shows over-smoothing beyond 3
    /// layers; residual updates are the standard mitigation, so this is an
    /// ablation knob (default `false` to match the paper's observation).
    pub residual: bool,
    /// Whether layers update the equivariant coordinate channel.
    pub update_coords: bool,
    /// Whether messages are gated by a learned sigmoid (Satorras et al.'s
    /// optional edge inference).
    pub edge_gate: bool,
    /// Whether each layer's feature update passes through a learned
    /// LayerNorm (the Transformer-lineage stabilizer; an "LLM-inspired
    /// technique" ablation for deep GNNs).
    pub layer_norm: bool,
    /// Number of Gaussian radial-basis functions expanding the edge
    /// distance (0 = feed raw ‖r‖², the Satorras original). RBF
    /// featurization is the standard distance encoding in atomistic GNNs
    /// (SchNet onward) and an ablation knob here.
    pub n_rbf: usize,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl EgnnConfig {
    /// A config with the given width and depth and default flags.
    pub fn new(hidden_dim: usize, n_layers: usize) -> Self {
        EgnnConfig {
            node_feat_dim: NODE_FEAT_DIM,
            hidden_dim,
            n_layers,
            residual: false,
            update_coords: true,
            edge_gate: false,
            layer_norm: false,
            n_rbf: 0,
            seed: 0,
        }
    }

    /// Returns `self` with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with residual feature updates toggled.
    pub fn with_residual(mut self, residual: bool) -> Self {
        self.residual = residual;
        self
    }

    /// Returns `self` with coordinate updates toggled.
    pub fn with_update_coords(mut self, update: bool) -> Self {
        self.update_coords = update;
        self
    }

    /// Returns `self` with the edge gate toggled.
    pub fn with_edge_gate(mut self, gate: bool) -> Self {
        self.edge_gate = gate;
        self
    }

    /// Returns `self` with per-layer LayerNorm toggled.
    pub fn with_layer_norm(mut self, layer_norm: bool) -> Self {
        self.layer_norm = layer_norm;
        self
    }

    /// Returns `self` with `n_rbf` Gaussian radial basis functions for
    /// edge distances (0 restores the raw-‖r‖² encoding).
    pub fn with_rbf(mut self, n_rbf: usize) -> Self {
        self.n_rbf = n_rbf;
        self
    }

    /// Width of the per-edge distance featurization (1 for raw ‖r‖²).
    pub fn edge_feat_dim(&self) -> usize {
        if self.n_rbf == 0 {
            1
        } else {
            self.n_rbf
        }
    }

    /// Exact scalar parameter count of the model this config builds.
    pub fn param_count(&self) -> usize {
        let h = self.hidden_dim;
        let f = self.node_feat_dim;
        let e = self.edge_feat_dim();
        // Embedding: Linear(F → H).
        let mut total = f * h + h;
        // Per layer: φ_e [2H+E → H → H], φ_x [H → H → 1] (if coords),
        // φ_h [2H → H → H], gate Linear(H → 1) (if gated).
        let mut per_layer = Mlp::count_params(&[2 * h + e, h, h]);
        per_layer += Mlp::count_params(&[2 * h, h, h]);
        if self.update_coords {
            per_layer += Mlp::count_params(&[h, h, 1]);
        }
        if self.edge_gate {
            per_layer += h + 1;
        }
        if self.layer_norm {
            per_layer += crate::mlp::LayerNorm::count_params(h);
        }
        total += per_layer * self.n_layers;
        // Heads: energy [H → H → 1], forces [2H+E → H → 1].
        total += Mlp::count_params(&[h, h, 1]);
        total += Mlp::count_params(&[2 * h + e, h, 1]);
        total
    }

    /// Finds the width whose parameter count at depth `n_layers` is closest
    /// to `target` (default flags), by monotone search over widths.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn with_target_params(target: usize, n_layers: usize) -> Self {
        assert!(target > 0, "target parameter count must be positive");
        let count = |w: usize| EgnnConfig::new(w, n_layers).param_count();
        // Exponential bracket then binary search (param count is strictly
        // increasing in width).
        let mut lo = 1usize;
        let mut hi = 2usize;
        while count(hi) < target {
            lo = hi;
            hi *= 2;
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if count(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let best = if target.abs_diff(count(lo)) <= target.abs_diff(count(hi)) {
            lo
        } else {
            hi
        };
        EgnnConfig::new(best.max(2), n_layers)
    }

    /// Human-readable summary, e.g. `egnn(h=64, L=3, 125k params)`.
    pub fn summary(&self) -> String {
        let n = self.param_count();
        let human = if n >= 1_000_000 {
            format!("{:.1}M", n as f64 / 1e6)
        } else if n >= 1_000 {
            format!("{:.1}k", n as f64 / 1e3)
        } else {
            n.to_string()
        };
        format!(
            "egnn(h={}, L={}, {human} params{}{}{}{}{})",
            self.hidden_dim,
            self.n_layers,
            if self.residual { ", residual" } else { "" },
            if self.edge_gate { ", gated" } else { "" },
            if self.update_coords {
                ""
            } else {
                ", frozen-coords"
            },
            if self.n_rbf > 0 { ", rbf" } else { "" },
            if self.layer_norm { ", layernorm" } else { "" },
        )
    }
}

impl Default for EgnnConfig {
    fn default() -> Self {
        EgnnConfig::new(32, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_monotone_in_width_and_depth() {
        let c = |w, l| EgnnConfig::new(w, l).param_count();
        assert!(c(8, 3) < c(16, 3));
        assert!(c(16, 3) < c(16, 5));
    }

    #[test]
    fn flags_change_count() {
        let base = EgnnConfig::new(16, 3);
        assert!(base.with_edge_gate(true).param_count() > base.param_count());
        assert!(base.with_rbf(16).param_count() > base.param_count());
        assert_eq!(base.with_rbf(0).param_count(), base.param_count());
        assert!(base.with_update_coords(false).param_count() < base.param_count());
        // Residual adds no parameters.
        assert_eq!(base.with_residual(true).param_count(), base.param_count());
    }

    #[test]
    fn target_search_hits_near_target() {
        for &target in &[500usize, 5_000, 50_000, 500_000, 2_000_000] {
            let cfg = EgnnConfig::with_target_params(target, 3);
            let got = cfg.param_count() as f64;
            let rel = (got / target as f64 - 1.0).abs();
            assert!(rel < 0.5, "target {target}: got {got} (rel err {rel:.2})");
        }
    }

    #[test]
    fn target_search_respects_depth() {
        let c3 = EgnnConfig::with_target_params(100_000, 3);
        let c6 = EgnnConfig::with_target_params(100_000, 6);
        // Deeper model needs a narrower width for the same budget.
        assert!(c6.hidden_dim < c3.hidden_dim);
    }

    #[test]
    fn summary_mentions_shape() {
        let s = EgnnConfig::new(64, 3).summary();
        assert!(s.contains("h=64"));
        assert!(s.contains("L=3"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_panics() {
        let _ = EgnnConfig::with_target_params(0, 3);
    }
}
