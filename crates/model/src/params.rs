//! Named parameter collections shared by all model families.
//!
//! A [`ParamSet`] owns the model's weight tensors in a stable order; that
//! order is the contract between models, optimizers, the distributed
//! runtime (which flattens parameters for collectives and ZeRO sharding),
//! and checkpointed execution (which binds per-segment slices).

use matgnn_tensor::{Tape, Tensor, Var};

/// One named parameter tensor.
#[derive(Debug, Clone)]
pub struct ParamEntry {
    /// Hierarchical name, e.g. `layer3.phi_e.0.weight`.
    pub name: String,
    /// The parameter values.
    pub tensor: Tensor,
}

/// An ordered, named collection of parameter tensors.
///
/// # Examples
///
/// ```
/// use matgnn_model::ParamSet;
/// use matgnn_tensor::Tensor;
///
/// let mut params = ParamSet::new();
/// params.push("w", Tensor::ones((2, 3)));
/// params.push("b", Tensor::zeros(3usize));
/// assert_eq!(params.len(), 2);
/// assert_eq!(params.n_scalars(), 9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    entries: Vec<ParamEntry>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Appends a parameter; returns its index.
    pub fn push(&mut self, name: impl Into<String>, tensor: Tensor) -> usize {
        self.entries.push(ParamEntry {
            name: name.into(),
            tensor,
        });
        self.entries.len() - 1
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.tensor.numel()).sum()
    }

    /// Total parameter bytes.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.tensor.bytes() as u64).sum()
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn entry(&self, index: usize) -> &ParamEntry {
        &self.entries[index]
    }

    /// The tensor at `index`.
    pub fn tensor(&self, index: usize) -> &Tensor {
        &self.entries[index].tensor
    }

    /// Mutable access to the tensor at `index`.
    pub fn tensor_mut(&mut self, index: usize) -> &mut Tensor {
        &mut self.entries[index].tensor
    }

    /// Iterates over entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &ParamEntry> {
        self.entries.iter()
    }

    /// Iterates mutably over entries in order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ParamEntry> {
        self.entries.iter_mut()
    }

    /// Binds every parameter onto `tape` (as gradient-requiring leaves), in
    /// order.
    pub fn bind(&self, tape: &mut Tape) -> Vec<Var> {
        self.entries
            .iter()
            .map(|e| tape.param(e.tensor.clone()))
            .collect()
    }

    /// Binds every parameter onto `tape` as **constants** (no gradients) —
    /// the inference/evaluation path, which skips all backward bookkeeping.
    pub fn bind_frozen(&self, tape: &mut Tape) -> Vec<Var> {
        self.entries
            .iter()
            .map(|e| tape.constant(e.tensor.clone()))
            .collect()
    }

    /// Binds the half-open index range `[start, end)` onto `tape`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn bind_range(&self, tape: &mut Tape, start: usize, end: usize) -> Vec<Var> {
        self.entries[start..end]
            .iter()
            .map(|e| tape.param(e.tensor.clone()))
            .collect()
    }

    /// Concatenates all parameters into one flat vector (the layout used by
    /// collectives and ZeRO sharding).
    pub fn flatten(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.n_scalars());
        for e in &self.entries {
            data.extend_from_slice(e.tensor.data());
        }
        Tensor::from_vec(data.len(), data).expect("flatten length")
    }

    /// Overwrites every parameter from a flat vector produced by
    /// [`flatten`](ParamSet::flatten) (same order and total length).
    ///
    /// # Panics
    ///
    /// Panics if `flat` has the wrong total length.
    pub fn unflatten_from(&mut self, flat: &Tensor) {
        assert_eq!(
            flat.numel(),
            self.n_scalars(),
            "flat vector length mismatch"
        );
        let src = flat.data();
        let mut offset = 0;
        for e in &mut self.entries {
            let n = e.tensor.numel();
            e.tensor
                .data_mut()
                .copy_from_slice(&src[offset..offset + n]);
            offset += n;
        }
    }

    /// Squared L2 norm over all parameters.
    pub fn norm_sq(&self) -> f32 {
        self.entries.iter().map(|e| e.tensor.norm_sq()).sum()
    }
}

impl FromIterator<ParamEntry> for ParamSet {
    fn from_iter<I: IntoIterator<Item = ParamEntry>>(iter: I) -> Self {
        ParamSet {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamSet {
        let mut p = ParamSet::new();
        p.push(
            "a",
            Tensor::from_vec((2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        );
        p.push("b", Tensor::from_vec(3usize, vec![5.0, 6.0, 7.0]).unwrap());
        p
    }

    #[test]
    fn counting() {
        let p = sample();
        assert_eq!(p.len(), 2);
        assert_eq!(p.n_scalars(), 7);
        assert_eq!(p.bytes(), 28);
        assert_eq!(p.entry(0).name, "a");
    }

    #[test]
    fn flatten_roundtrip() {
        let p = sample();
        let flat = p.flatten();
        assert_eq!(flat.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let mut q = sample();
        q.tensor_mut(0).fill(0.0);
        q.unflatten_from(&flat);
        assert_eq!(q.tensor(0).data(), p.tensor(0).data());
        assert_eq!(q.tensor(1).data(), p.tensor(1).data());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_wrong_length_panics() {
        let mut p = sample();
        p.unflatten_from(&Tensor::zeros(3usize));
    }

    #[test]
    fn bind_preserves_order_and_values() {
        let p = sample();
        let mut tape = Tape::new();
        let vars = p.bind(&mut tape);
        assert_eq!(vars.len(), 2);
        assert_eq!(tape.value(vars[1]).data(), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn bind_range_subset() {
        let p = sample();
        let mut tape = Tape::new();
        let vars = p.bind_range(&mut tape, 1, 2);
        assert_eq!(vars.len(), 1);
        assert_eq!(tape.value(vars[0]).numel(), 3);
    }

    #[test]
    fn norm_sq_matches_manual() {
        let p = sample();
        let expect: f32 = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
            .iter()
            .map(|x| x * x)
            .sum();
        assert!((p.norm_sq() - expect).abs() < 1e-6);
    }
}
