//! The E(n)-equivariant graph neural network (EGNN) of Satorras et al.,
//! with graph-level (energy) and node-level (force) output heads — the
//! backbone the paper scales from 0.1 M to 2 B parameters.
//!
//! Per layer, for every directed edge `(i, j)` with relative vector
//! `r_ij = x_i − x_j`:
//!
//! ```text
//! m_ij = φ_e(h_i, h_j, ‖r_ij‖²)
//! d_i += (1/deg_i) Σ_j r_ij · φ_x(m_ij)        (coordinate channel)
//! h_i  = φ_h(h_i, Σ_j m_ij)                    (+ h_i if residual)
//! ```
//!
//! Invariances (energy) and equivariances (forces) under rotation,
//! translation and permutation hold by construction and are asserted by
//! the test suite.

use std::sync::Arc;

use matgnn_graph::GraphBatch;
use matgnn_tensor::{Tape, Tensor, Var};

use crate::mlp::{init_rng, Activation, LayerNorm, Mlp};
use crate::{EgnnConfig, GnnModel, ParamSet};

#[derive(Debug, Clone)]
struct EgnnLayer {
    phi_e: Mlp,
    phi_x: Option<Mlp>,
    phi_h: Mlp,
    gate: Option<Mlp>,
    norm: Option<LayerNorm>,
}

/// The EGNN model.
///
/// # Examples
///
/// ```
/// use matgnn_graph::{AtomicStructure, Element, GraphBatch, MolGraph};
/// use matgnn_model::{Egnn, EgnnConfig, GnnModel};
/// use matgnn_tensor::Tape;
///
/// let s = AtomicStructure::new(
///     vec![Element::O, Element::H, Element::H],
///     vec![[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]],
/// )?;
/// let g = MolGraph::from_structure(&s, 2.0);
/// let batch = GraphBatch::from_graphs(&[&g]);
///
/// let model = Egnn::new(EgnnConfig::new(16, 2));
/// let mut tape = Tape::new();
/// let (_, out) = model.bind_and_forward(&mut tape, &batch);
/// assert_eq!(tape.shape(out.energy).dims(), &[1, 1]);
/// assert_eq!(tape.shape(out.forces).dims(), &[3, 3]);
/// # Ok::<(), matgnn_graph::StructureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Egnn {
    config: EgnnConfig,
    params: ParamSet,
    embed: Mlp,
    layers: Vec<EgnnLayer>,
    energy_head: Mlp,
    force_head: Mlp,
    /// Param-index range per segment: `[embed, layer0.., heads]`.
    segment_ranges: Vec<(usize, usize)>,
    /// RBF broadcast row (`[1 × K]` of ones) and negated centers, built
    /// once here instead of per `rbf_expand` call (`None` iff `n_rbf == 0`).
    rbf_consts: Option<(Tensor, Tensor)>,
}

/// Upper end of the Gaussian RBF center grid, in Å.
const RBF_RMAX: f32 = 3.5;

impl Egnn {
    /// Builds and initializes the model described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` or `n_layers` is zero.
    pub fn new(config: EgnnConfig) -> Self {
        assert!(config.hidden_dim > 0, "hidden_dim must be positive");
        assert!(config.n_layers > 0, "n_layers must be positive");
        let h = config.hidden_dim;
        let e = config.edge_feat_dim();
        let mut params = ParamSet::new();
        let mut rng = init_rng(config.seed);
        let mut segment_ranges = Vec::with_capacity(config.n_layers + 2);

        let mut start = params.len();
        let embed = Mlp::new(
            &mut params,
            "embed",
            &[config.node_feat_dim, h],
            Activation::Silu,
            Activation::Silu,
            1.0,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        let mut layers = Vec::with_capacity(config.n_layers);
        for l in 0..config.n_layers {
            start = params.len();
            let phi_e = Mlp::new(
                &mut params,
                &format!("layer{l}.phi_e"),
                &[2 * h + e, h, h],
                Activation::Silu,
                Activation::Silu,
                1.0,
                &mut rng,
            );
            let phi_x = config.update_coords.then(|| {
                Mlp::new(
                    &mut params,
                    &format!("layer{l}.phi_x"),
                    &[h, h, 1],
                    Activation::Silu,
                    Activation::None,
                    0.1,
                    &mut rng,
                )
            });
            let phi_h = Mlp::new(
                &mut params,
                &format!("layer{l}.phi_h"),
                &[2 * h, h, h],
                Activation::Silu,
                Activation::None,
                1.0,
                &mut rng,
            );
            let gate = config.edge_gate.then(|| {
                Mlp::new(
                    &mut params,
                    &format!("layer{l}.gate"),
                    &[h, 1],
                    Activation::Silu,
                    Activation::None,
                    1.0,
                    &mut rng,
                )
            });
            let norm = config
                .layer_norm
                .then(|| LayerNorm::new(&mut params, &format!("layer{l}.norm"), h));
            layers.push(EgnnLayer {
                phi_e,
                phi_x,
                phi_h,
                gate,
                norm,
            });
            segment_ranges.push((start, params.len()));
        }

        start = params.len();
        let energy_head = Mlp::new(
            &mut params,
            "energy_head",
            &[h, h, 1],
            Activation::Silu,
            Activation::None,
            1.0,
            &mut rng,
        );
        let force_head = Mlp::new(
            &mut params,
            "force_head",
            &[2 * h + e, h, 1],
            Activation::Silu,
            Activation::None,
            0.1,
            &mut rng,
        );
        segment_ranges.push((start, params.len()));

        debug_assert_eq!(
            params.n_scalars(),
            config.param_count(),
            "param count formula drift"
        );

        let rbf_consts = (config.n_rbf > 0).then(|| {
            let k = config.n_rbf;
            let delta = RBF_RMAX / (k.max(2) - 1) as f32;
            let neg_mu: Vec<f32> = (0..k).map(|i| -(i as f32) * delta).collect();
            (
                Tensor::ones((1, k)),
                Tensor::from_vec(k, neg_mu).expect("centers"),
            )
        });

        Egnn {
            config,
            params,
            embed,
            layers,
            energy_head,
            force_head,
            segment_ranges,
            rbf_consts,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &EgnnConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn n_params(&self) -> usize {
        self.params.n_scalars()
    }

    /// Predicts **energy-conserving forces** `F = −∂E/∂x` by
    /// differentiating the energy head with respect to atom positions
    /// (through the edge vectors), instead of using the direct force head.
    ///
    /// Conservative forces integrate to the predicted energy surface by
    /// construction — the property MD applications need (SchNet-style
    /// gradient forces). Returns `(energies [n_graphs × 1], forces
    /// [n_nodes × 3])` in the model's (normalized) output units.
    pub fn conservative_forces(&self, batch: &GraphBatch) -> (Tensor, Tensor) {
        let mut tape = Tape::new();
        // Parameters frozen; only the edge vectors require gradients.
        let pvars = self.params.bind_frozen(&mut tape);
        let rel0 = tape.param(batch.edge_vectors().clone());
        let mut state = {
            let (start, end) = self.segment_ranges[0];
            self.segment_forward(&mut tape, 0, &pvars[start..end], batch, &[])
        };
        state[2] = rel0;
        for seg in 1..self.n_segments() {
            let (start, end) = self.segment_ranges[seg];
            state = self.segment_forward(&mut tape, seg, &pvars[start..end], batch, &state);
        }
        let energy = state[0];
        let energies = tape.value(energy).clone();
        // Differentiate the total (sum over graphs) energy; graphs are
        // disjoint, so per-atom gradients stay per-graph.
        let total = tape.sum_all(energy);
        let mut grads = tape.backward(total);
        let g_rel = grads
            .take(rel0)
            .unwrap_or_else(|| Tensor::zeros((batch.n_edges(), 3)));
        // rel_e = (x_src + d_src) − (x_dst + d_dst) + … , so
        // ∂E/∂x_i = Σ_{src(e)=i} g_e − Σ_{dst(e)=i} g_e and F = −∂E/∂x.
        let n = batch.n_nodes();
        let from_src = g_rel.scatter_add_rows(batch.src(), n);
        let from_dst = g_rel.scatter_add_rows(batch.dst(), n);
        let forces = from_dst.sub(&from_src);
        (energies, forces)
    }

    /// The head segment at **node granularity**: per-node energies
    /// `[n × 1]` (before the per-graph reduction) and per-node force rows
    /// `[n × 3]`. This is the entry point the graph-parallel engine uses:
    /// on a partition-local batch the owned rows of both outputs are
    /// bitwise identical to the same rows of the full-graph heads, while
    /// the per-graph energy reduction is left to the caller (which must
    /// sum node energies in global node order to preserve parity).
    /// `pvars` must bind the heads segment's parameters.
    pub fn head_forward_nodes(
        &self,
        tape: &mut Tape,
        pvars: &[Var],
        batch: &GraphBatch,
        h: Var,
        d: Var,
        rel0: Var,
    ) -> (Var, Var) {
        let (offset, _) = self.segment_ranges[self.n_segments() - 1];
        let node_e = self.energy_head.forward(tape, pvars, offset, h);
        let (m_in, rel) = self.edge_inputs(tape, batch, h, d, rel0);
        let w = self.force_head.forward(tape, pvars, offset, m_in);
        let weighted = tape.mul_col(rel, w);
        let forces = tape.scatter_add_rows(weighted, Arc::clone(batch.src()), batch.n_nodes());
        (node_e, forces)
    }

    /// Current relative vectors: the base minimum-image vectors plus the
    /// learned displacement delta (if coordinates update).
    fn relative_vectors(&self, tape: &mut Tape, batch: &GraphBatch, d: Var, rel0: Var) -> Var {
        if !self.config.update_coords {
            return rel0;
        }
        let di = tape.gather_rows(d, Arc::clone(batch.src()));
        let dj = tape.gather_rows(d, Arc::clone(batch.dst()));
        let delta = tape.sub(di, dj);
        tape.add(rel0, delta)
    }

    /// Edge message inputs `[h_src ‖ h_dst ‖ dist features]` and the rel
    /// vectors. The distance feature is raw `‖r‖²` or, with `n_rbf > 0`,
    /// a Gaussian radial-basis expansion of `‖r‖`.
    fn edge_inputs(
        &self,
        tape: &mut Tape,
        batch: &GraphBatch,
        h: Var,
        d: Var,
        rel0: Var,
    ) -> (Var, Var) {
        let rel = self.relative_vectors(tape, batch, d, rel0);
        let sq = tape.square(rel);
        let dist2 = tape.sum_axis1(sq);
        let dist_feat = if self.config.n_rbf == 0 {
            dist2
        } else {
            self.rbf_expand(tape, dist2)
        };
        let hi = tape.gather_rows(h, Arc::clone(batch.src()));
        let hj = tape.gather_rows(h, Arc::clone(batch.dst()));
        let m_in = tape.concat_cols(&[hi, hj, dist_feat]);
        (m_in, rel)
    }

    /// Gaussian RBF expansion `exp(−γ(‖r‖ − μ_k)²)` with centers spread
    /// over `[0, RBF_RMAX]`.
    fn rbf_expand(&self, tape: &mut Tape, dist2: Var) -> Var {
        let k = self.config.n_rbf;
        let delta = RBF_RMAX / (k.max(2) - 1) as f32;
        let gamma = 1.0 / (2.0 * delta * delta);
        // ‖r‖ from ‖r‖² (tiny shift keeps the sqrt adjoint bounded).
        let shifted = tape.add_scalar(dist2, 1e-8);
        let dist = tape.sqrt(shifted);
        // Broadcast to [E, K] and subtract the centers; the clones share
        // the model-lifetime buffers built in `new`.
        let (ones, mu) = self.rbf_consts.as_ref().expect("n_rbf > 0");
        let ones_row = tape.constant(ones.clone());
        let d_mat = tape.matmul(dist, ones_row);
        let neg_mu = tape.constant(mu.clone());
        let centered = tape.add_row(d_mat, neg_mu);
        let sq = tape.square(centered);
        let scaled = tape.scale(sq, -gamma);
        tape.exp(scaled)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the EGNN layer equation inputs
    fn layer_forward(
        &self,
        li: usize,
        tape: &mut Tape,
        pvars: &[Var],
        offset: usize,
        batch: &GraphBatch,
        h: Var,
        d: Var,
        rel0: Var,
    ) -> (Var, Var) {
        let layer = &self.layers[li];
        let n = batch.n_nodes();
        let (m_in, rel) = self.edge_inputs(tape, batch, h, d, rel0);
        let mut m = layer.phi_e.forward(tape, pvars, offset, m_in);
        if let Some(gate) = &layer.gate {
            let g = gate.forward(tape, pvars, offset, m);
            let g = tape.sigmoid(g);
            m = tape.mul_col(m, g);
        }

        let d_next = match &layer.phi_x {
            Some(phi_x) => {
                let w = phi_x.forward(tape, pvars, offset, m);
                let weighted = tape.mul_col(rel, w);
                let upd = tape.scatter_add_rows(weighted, Arc::clone(batch.src()), n);
                // Precomputed at batch build time (was rebuilt per layer).
                let inv_deg = tape.constant(batch.inv_src_degree().clone());
                let upd = tape.mul_col(upd, inv_deg);
                tape.add(d, upd)
            }
            None => d,
        };

        let agg = tape.scatter_add_rows(m, Arc::clone(batch.src()), n);
        let h_in = tape.concat_cols(&[h, agg]);
        let out = layer.phi_h.forward(tape, pvars, offset, h_in);
        let mut h_next = if self.config.residual {
            tape.add(h, out)
        } else {
            out
        };
        if let Some(norm) = &layer.norm {
            h_next = norm.forward(tape, pvars, offset, h_next);
        }
        (h_next, d_next)
    }
}

impl GnnModel for Egnn {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn n_segments(&self) -> usize {
        self.config.n_layers + 2
    }

    fn segment_param_range(&self, seg: usize) -> (usize, usize) {
        self.segment_ranges[seg]
    }

    fn segment_forward(
        &self,
        tape: &mut Tape,
        seg: usize,
        pvars: &[Var],
        batch: &GraphBatch,
        state: &[Var],
    ) -> Vec<Var> {
        let (offset, _) = self.segment_ranges[seg];
        let last = self.n_segments() - 1;
        if seg == 0 {
            // Embed: node features → h; zero coordinate displacement; the
            // base edge vectors travel with the state so callers (e.g.
            // conservative-force prediction) can substitute a
            // gradient-requiring binding.
            assert!(state.is_empty(), "embed segment takes no state");
            let feats = tape.constant(batch.node_feats().clone());
            let h = self.embed.forward(tape, pvars, offset, feats);
            let d = tape.constant(Tensor::zeros((batch.n_nodes(), 3)));
            let rel0 = tape.constant(batch.edge_vectors().clone());
            vec![h, d, rel0]
        } else if seg < last {
            let (h, d, rel0) = (state[0], state[1], state[2]);
            let (h2, d2) = self.layer_forward(seg - 1, tape, pvars, offset, batch, h, d, rel0);
            vec![h2, d2, rel0]
        } else {
            // Heads.
            let (h, d, rel0) = (state[0], state[1], state[2]);
            let node_e = self.energy_head.forward(tape, pvars, offset, h);
            // Energy is extensive: sum node contributions per graph.
            let energy =
                tape.scatter_add_rows(node_e, Arc::clone(batch.node_graph()), batch.n_graphs());
            // Equivariant force head: per-edge scalar times rel vector.
            let (m_in, rel) = self.edge_inputs(tape, batch, h, d, rel0);
            let w = self.force_head.forward(tape, pvars, offset, m_in);
            let weighted = tape.mul_col(rel, w);
            let forces = tape.scatter_add_rows(weighted, Arc::clone(batch.src()), batch.n_nodes());
            vec![energy, forces]
        }
    }

    fn describe(&self) -> String {
        self.config.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgnn_graph::vec3::{matvec, rotation_about};
    use matgnn_graph::{AtomicStructure, Element, MolGraph};
    use matgnn_tensor::gradcheck;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_structure(n: usize, seed: u64) -> AtomicStructure {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = [Element::H, Element::C, Element::N, Element::O];
        let species = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let positions = (0..n)
            .map(|i| {
                [
                    (i % 3) as f64 * 1.3 + rng.gen_range(-0.3..0.3),
                    ((i / 3) % 3) as f64 * 1.3 + rng.gen_range(-0.3..0.3),
                    (i / 9) as f64 * 1.3 + rng.gen_range(-0.3..0.3),
                ]
            })
            .collect();
        AtomicStructure::new(species, positions).unwrap()
    }

    fn batch_of(structures: &[AtomicStructure]) -> GraphBatch {
        let graphs: Vec<MolGraph> = structures
            .iter()
            .map(|s| MolGraph::from_structure(s, 3.0))
            .collect();
        let refs: Vec<&MolGraph> = graphs.iter().collect();
        GraphBatch::from_graphs(&refs)
    }

    fn run(model: &Egnn, batch: &GraphBatch) -> (Tensor, Tensor) {
        let mut tape = Tape::new();
        let (_, out) = model.bind_and_forward(&mut tape, batch);
        (
            tape.value(out.energy).clone(),
            tape.value(out.forces).clone(),
        )
    }

    #[test]
    fn output_shapes() {
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let b = batch_of(&[random_structure(5, 1), random_structure(7, 2)]);
        let (e, f) = run(&model, &b);
        assert_eq!(e.shape().dims(), &[2, 1]);
        assert_eq!(f.shape().dims(), &[12, 3]);
        assert!(e.is_finite());
        assert!(f.is_finite());
    }

    #[test]
    fn built_param_count_matches_config_formula() {
        for cfg in [
            EgnnConfig::new(8, 2),
            EgnnConfig::new(16, 4).with_edge_gate(true),
            EgnnConfig::new(12, 3).with_update_coords(false),
            EgnnConfig::new(10, 1).with_residual(true),
            EgnnConfig::new(9, 2).with_layer_norm(true),
        ] {
            assert_eq!(
                Egnn::new(cfg).n_params(),
                cfg.param_count(),
                "{}",
                cfg.summary()
            );
        }
    }

    #[test]
    fn energy_invariant_under_translation() {
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let s = random_structure(6, 3);
        let mut t = s.clone();
        t.translate([7.0, -4.0, 2.5]);
        let (e1, f1) = run(&model, &batch_of(&[s]));
        let (e2, f2) = run(&model, &batch_of(&[t]));
        assert!(e1.allclose(&e2, 1e-4), "{e1:?} vs {e2:?}");
        assert!(f1.allclose(&f2, 1e-4));
    }

    #[test]
    fn energy_invariant_forces_covariant_under_rotation() {
        let model = Egnn::new(EgnnConfig::new(8, 3));
        let s = random_structure(6, 4);
        let rot = rotation_about([0.3, 1.0, -0.2], 1.2);
        let mut t = s.clone();
        t.rotate(&rot);
        let (e1, f1) = run(&model, &batch_of(&[s]));
        let (e2, f2) = run(&model, &batch_of(&[t]));
        assert!(e1.allclose(&e2, 1e-3), "energy changed under rotation");
        for a in 0..f1.rows() {
            let v = [
                f1.get(a, 0) as f64,
                f1.get(a, 1) as f64,
                f1.get(a, 2) as f64,
            ];
            let rv = matvec(&rot, v);
            for k in 0..3 {
                assert!(
                    (rv[k] as f32 - f2.get(a, k)).abs() < 1e-3,
                    "atom {a} force not covariant: {rv:?} vs row {a} of {f2:?}"
                );
            }
        }
    }

    #[test]
    fn permutation_equivariance() {
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let s = random_structure(5, 5);
        // Reverse atom order.
        let perm: Vec<usize> = (0..s.len()).rev().collect();
        let species: Vec<Element> = perm.iter().map(|&i| s.species()[i]).collect();
        let positions: Vec<[f64; 3]> = perm.iter().map(|&i| s.positions()[i]).collect();
        let p = AtomicStructure::new(species, positions).unwrap();
        let (e1, f1) = run(&model, &batch_of(&[s]));
        let (e2, f2) = run(&model, &batch_of(&[p]));
        assert!(e1.allclose(&e2, 1e-4), "energy changed under permutation");
        for (new_row, &old_row) in perm.iter().enumerate() {
            for k in 0..3 {
                assert!((f1.get(old_row, k) - f2.get(new_row, k)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn batching_consistent_with_individual_graphs() {
        let model = Egnn::new(EgnnConfig::new(8, 2));
        let s1 = random_structure(5, 6);
        let s2 = random_structure(8, 7);
        let (e1, f1) = run(&model, &batch_of(std::slice::from_ref(&s1)));
        let (e2, f2) = run(&model, &batch_of(std::slice::from_ref(&s2)));
        let (eb, fb) = run(&model, &batch_of(&[s1, s2]));
        assert!((eb.get(0, 0) - e1.get(0, 0)).abs() < 1e-4);
        assert!((eb.get(1, 0) - e2.get(0, 0)).abs() < 1e-4);
        for a in 0..5 {
            for k in 0..3 {
                assert!((fb.get(a, k) - f1.get(a, k)).abs() < 1e-4);
            }
        }
        for a in 0..8 {
            for k in 0..3 {
                assert!((fb.get(5 + a, k) - f2.get(a, k)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn layer_norm_variant_gradcheck() {
        let model = Egnn::new(EgnnConfig::new(4, 2).with_layer_norm(true).with_seed(29));
        let b = batch_of(&[random_structure(4, 30)]);
        let inputs: Vec<Tensor> = model.params().iter().map(|e| e.tensor.clone()).collect();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let out = model.forward(tape, vars, &b);
                let e2 = tape.square(out.energy);
                let f2 = tape.square(out.forces);
                let le = tape.mean_all(e2);
                let lf = tape.mean_all(f2);
                tape.add(le, lf)
            },
            3e-2,
        );
    }

    #[test]
    fn whole_model_gradcheck() {
        // Check d(loss)/d(params) for a tiny EGNN against finite
        // differences, where loss = mean(E²) + mean(F²).
        let model = Egnn::new(EgnnConfig::new(4, 2).with_seed(11));
        let b = batch_of(&[random_structure(4, 8)]);
        let inputs: Vec<Tensor> = model.params().iter().map(|e| e.tensor.clone()).collect();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let out = model.forward(tape, vars, &b);
                let e2 = tape.square(out.energy);
                let f2 = tape.square(out.forces);
                let le = tape.mean_all(e2);
                let lf = tape.mean_all(f2);
                tape.add(le, lf)
            },
            3e-2,
        );
    }

    #[test]
    fn conservative_forces_match_finite_differences() {
        // F = −∂E/∂x must agree with central differences of the predicted
        // energy under edge-vector perturbations that mimic moving one
        // atom (the edge set is held fixed, as in a single MD step).
        let model = Egnn::new(EgnnConfig::new(6, 2).with_seed(23));
        let s = random_structure(5, 21);
        let graph = MolGraph::from_structure(&s, 3.0);
        let batch = GraphBatch::from_graphs(&[&graph]);
        let (_, forces) = model.conservative_forces(&batch);

        let energy_with_shift = |atom: usize, axis: usize, eps: f32| -> f32 {
            // Shift edge vectors exactly as moving `atom` by eps would.
            let mut ev = batch.edge_vectors().clone();
            {
                let data = ev.data_mut();
                for (e, (&src, &dst)) in batch.src().iter().zip(batch.dst().iter()).enumerate() {
                    if src == atom {
                        data[e * 3 + axis] += eps;
                    }
                    if dst == atom {
                        data[e * 3 + axis] -= eps;
                    }
                }
            }
            let mut tape = Tape::new();
            let pvars = model.params().bind_frozen(&mut tape);
            let rel0 = tape.constant(ev);
            let mut state = {
                let (st, en) = model.segment_param_range(0);
                model.segment_forward(&mut tape, 0, &pvars[st..en], &batch, &[])
            };
            state[2] = rel0;
            for seg in 1..model.n_segments() {
                let (st, en) = model.segment_param_range(seg);
                state = model.segment_forward(&mut tape, seg, &pvars[st..en], &batch, &state);
            }
            tape.value(state[0]).sum_all()
        };

        let eps = 2e-3;
        for atom in 0..s.len() {
            for axis in 0..3 {
                let fd = -(energy_with_shift(atom, axis, eps)
                    - energy_with_shift(atom, axis, -eps))
                    / (2.0 * eps);
                let got = forces.get(atom, axis);
                assert!(
                    (fd - got).abs() < 2e-2 * (1.0 + fd.abs()),
                    "atom {atom} axis {axis}: FD {fd} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn conservative_forces_sum_to_zero_and_rotate() {
        let model = Egnn::new(EgnnConfig::new(8, 2).with_seed(24));
        let s = random_structure(6, 22);
        let rot = rotation_about([0.2, 0.9, -0.5], 1.1);
        let mut r = s.clone();
        r.rotate(&rot);
        let get = |s: &AtomicStructure| {
            let g = MolGraph::from_structure(s, 3.0);
            let b = GraphBatch::from_graphs(&[&g]);
            model.conservative_forces(&b)
        };
        let (e1, f1) = get(&s);
        let (e2, f2) = get(&r);
        // Energy invariant; forces covariant; net force exactly zero
        // (the model sees only relative vectors).
        assert!(e1.allclose(&e2, 1e-3));
        for axis in 0..3 {
            let net: f32 = (0..s.len()).map(|a| f1.get(a, axis)).sum();
            assert!(
                net.abs() < 1e-4,
                "net conservative force {net} on axis {axis}"
            );
        }
        for a in 0..s.len() {
            let v = [
                f1.get(a, 0) as f64,
                f1.get(a, 1) as f64,
                f1.get(a, 2) as f64,
            ];
            let rv = matvec(&rot, v);
            for (k, &rvk) in rv.iter().enumerate() {
                assert!((rvk as f32 - f2.get(a, k)).abs() < 1e-3, "atom {a}");
            }
        }
    }

    #[test]
    fn rbf_variant_gradcheck_and_equivariance() {
        let model = Egnn::new(EgnnConfig::new(4, 2).with_rbf(6).with_seed(17));
        let b = batch_of(&[random_structure(4, 12)]);
        let inputs: Vec<Tensor> = model.params().iter().map(|e| e.tensor.clone()).collect();
        let m2 = model.clone();
        gradcheck::check_grad(
            &inputs,
            move |tape, vars| {
                let out = m2.forward(tape, vars, &b);
                let e2 = tape.square(out.energy);
                let f2 = tape.square(out.forces);
                let le = tape.mean_all(e2);
                let lf = tape.mean_all(f2);
                tape.add(le, lf)
            },
            3e-2,
        );
        // RBF features depend only on distances → rotation invariance holds.
        let s = random_structure(6, 13);
        let rot = rotation_about([0.7, 0.1, -0.4], 0.8);
        let mut t = s.clone();
        t.rotate(&rot);
        let (e1, _) = run(&model, &batch_of(&[s]));
        let (e2, _) = run(&model, &batch_of(&[t]));
        assert!(
            e1.allclose(&e2, 1e-3),
            "RBF variant broke rotation invariance"
        );
    }

    #[test]
    fn gated_and_residual_variants_run() {
        for cfg in [
            EgnnConfig::new(6, 2).with_edge_gate(true),
            EgnnConfig::new(6, 2).with_residual(true),
            EgnnConfig::new(6, 2).with_update_coords(false),
            EgnnConfig::new(6, 2).with_rbf(8),
            EgnnConfig::new(6, 2)
                .with_layer_norm(true)
                .with_residual(true),
        ] {
            let model = Egnn::new(cfg);
            let b = batch_of(&[random_structure(5, 9)]);
            let (e, f) = run(&model, &b);
            assert!(e.is_finite() && f.is_finite(), "{}", cfg.summary());
        }
    }

    #[test]
    fn segments_cover_all_params_disjointly() {
        let model = Egnn::new(EgnnConfig::new(8, 3));
        let mut covered = 0;
        for seg in 0..model.n_segments() {
            let (start, end) = model.segment_param_range(seg);
            assert_eq!(start, covered, "segment {seg} not contiguous");
            covered = end;
        }
        assert_eq!(covered, model.params().len());
    }

    #[test]
    #[should_panic(expected = "hidden_dim")]
    fn zero_width_panics() {
        let _ = Egnn::new(EgnnConfig::new(0, 2));
    }
}
